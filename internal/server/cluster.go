package server

// The cluster face of sparsedistd: a heartbeat gossip loop and two
// peer endpoints that let N daemons discover each other and agree on
// who is alive, plus the membership view (GET /cluster/nodes) that the
// cluster-aware client bootstraps its routing ring from. Failure
// detection itself lives in internal/cluster; this file is the HTTP
// glue and the goroutines that drive it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
)

// ClusterConfig joins this server to a daemon cluster. The zero value
// (no Advertise, no Peers) runs a single-node "cluster of one": the
// membership endpoints still answer, so a cluster client can bootstrap
// from a solo daemon, but no gossip goroutines start.
type ClusterConfig struct {
	// NodeID names this node; it must be unique in the cluster
	// (default: the Advertise URL, or "solo" without one).
	NodeID string
	// Advertise is the base URL peers and clients reach this node at,
	// e.g. "http://127.0.0.1:8477". Required to join peers.
	Advertise string
	// Peers are bootstrap endpoints of other cluster members. The full
	// membership is learned by gossip from whoever answers.
	Peers []string
	// HeartbeatEvery is the gossip period (default 500ms).
	HeartbeatEvery time.Duration
	// SuspectAfter is heartbeat silence before a peer turns suspect
	// (default 4x HeartbeatEvery).
	SuspectAfter time.Duration
	// DeadAfter is silence before a suspect is declared dead and its
	// hash ranges remap to survivors (default 10x HeartbeatEvery).
	DeadAfter time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.NodeID == "" {
		if c.Advertise != "" {
			c.NodeID = c.Advertise
		} else {
			c.NodeID = "solo"
		}
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatEvery
	}
	return c
}

// heartbeatMsg is the POST /cluster/heartbeat wire format: who is
// talking, plus their membership view for gossip convergence.
type heartbeatMsg struct {
	From  cluster.Node   `json:"from"`
	Known []cluster.Node `json:"known,omitempty"`
}

// nodesReply is the GET /cluster/nodes (and heartbeat response) body.
type nodesReply struct {
	Self  string         `json:"self"`
	Nodes []cluster.Node `json:"nodes"`
}

// startCluster launches the gossip sender and the failure-detector
// ticker. Called from start() when the config names peers.
func (s *Server) startCluster() {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.clusterStop = cancel
	s.mu.Unlock()
	s.clusterWG.Add(1)
	go func() {
		defer s.clusterWG.Done()
		t := time.NewTicker(s.cfg.Cluster.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.gossipOnce(ctx)
				s.registry.Tick(time.Now())
			}
		}
	}()
}

// stopCluster halts the gossip goroutine; idempotent and safe under
// concurrent Drain calls.
func (s *Server) stopCluster() {
	s.mu.Lock()
	stop := s.clusterStop
	s.clusterStop = nil
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	s.clusterWG.Wait()
}

// gossipOnce heartbeats every known peer endpoint (static bootstrap
// peers plus everything learned since, dead included — heartbeating a
// dead endpoint is how a rebooted node is re-discovered).
func (s *Server) gossipOnce(ctx context.Context) {
	endpoints := map[string]bool{}
	for _, p := range s.cfg.Cluster.Peers {
		endpoints[p] = true
	}
	for _, n := range s.registry.Snapshot(time.Now()) {
		if n.ID != s.cfg.Cluster.NodeID && n.Endpoint != "" {
			endpoints[n.Endpoint] = true
		}
	}
	delete(endpoints, s.cfg.Cluster.Advertise)
	for ep := range endpoints {
		s.heartbeatPeer(ctx, ep)
	}
}

// heartbeatPeer POSTs one heartbeat and merges the peer's membership
// view from the response.
func (s *Server) heartbeatPeer(ctx context.Context, endpoint string) {
	now := time.Now()
	msg := heartbeatMsg{
		From: cluster.Node{
			ID:       s.cfg.Cluster.NodeID,
			Endpoint: s.cfg.Cluster.Advertise,
			LastSeen: now,
		},
		Known: s.registry.Snapshot(now),
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Cluster.HeartbeatEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint+"/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.hbClient.Do(req)
	if err != nil {
		s.metrics.heartbeatErrors.Add(1)
		return
	}
	defer resp.Body.Close()
	s.metrics.heartbeatsSent.Add(1)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var reply nodesReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return
	}
	s.mergeView(reply.Self, endpoint, reply.Nodes)
}

// mergeView folds a peer's membership view into the registry: the
// responder itself counts as directly heard from; everyone else it
// knows is gossip — learned if new, never revived if already timed out.
func (s *Server) mergeView(self, endpoint string, nodes []cluster.Node) {
	now := time.Now()
	for _, n := range nodes {
		switch n.ID {
		case s.cfg.Cluster.NodeID:
			// Our own record reflected back; ignore.
		case self:
			ep := n.Endpoint
			if ep == "" {
				ep = endpoint
			}
			s.registry.Heartbeat(n.ID, ep, now)
		default:
			s.registry.Learn(n.ID, n.Endpoint, now)
		}
	}
	if self != "" && self != s.cfg.Cluster.NodeID {
		s.registry.Heartbeat(self, endpoint, now)
	}
}

// handleClusterNodes is GET /cluster/nodes: the membership view a
// cluster client builds its routing ring from.
func (s *Server) handleClusterNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, nodesReply{
		Self:  s.cfg.Cluster.NodeID,
		Nodes: s.registry.Snapshot(time.Now()),
	})
}

// handleClusterHeartbeat is POST /cluster/heartbeat: record the sender
// as alive, learn their gossip, answer with our own view so one
// round-trip converges both sides.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var msg heartbeatMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed heartbeat: %w", err))
		return
	}
	if msg.From.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("heartbeat missing sender id"))
		return
	}
	now := time.Now()
	s.metrics.heartbeatsRecv.Add(1)
	s.registry.Heartbeat(msg.From.ID, msg.From.Endpoint, now)
	for _, n := range msg.Known {
		if n.ID != s.cfg.Cluster.NodeID && n.ID != msg.From.ID {
			s.registry.Learn(n.ID, n.Endpoint, now)
		}
	}
	writeJSON(w, http.StatusOK, nodesReply{
		Self:  s.cfg.Cluster.NodeID,
		Nodes: s.registry.Snapshot(now),
	})
}
