package server_test

// Streamed-job tests: the daemon's out-of-core path, over synthetic and
// file sources.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sparse"
)

// TestStreamedJob runs one synthetic out-of-core job end to end and
// checks the result is flagged Streamed with the right totals, and that
// a resubmission hits the plan cache.
func TestStreamedJob(t *testing.T) {
	_, c, _ := startDaemon(t, server.Config{QueueDepth: 8, Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := server.JobSpec{N: 96, Ratio: 0.1, Scheme: "ED", Partition: "balanced-row",
		Procs: 4, Method: "CRS", Stream: true, MemBudget: 1 << 16}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Wait(ctx, id, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state = %q (error %q), want done", st.State, st.Error)
	}
	res := st.Result
	if !res.Streamed {
		t.Error("result not flagged Streamed")
	}
	ratio := 0.1
	want := int(ratio*96*96 + 0.5)
	if res.NNZ != want {
		t.Errorf("streamed NNZ = %d, want %d", res.NNZ, want)
	}
	if res.Rows != 96 || res.Cols != 96 || res.Procs != 4 {
		t.Errorf("geometry = p%d %dx%d, want p4 96x96", res.Procs, res.Rows, res.Cols)
	}
	if res.ArrayCacheHit {
		t.Error("streamed job reported an array cache hit; it must bypass the array cache")
	}
	if res.PlanCacheHit {
		t.Error("first streamed job of its shape reported a plan cache hit")
	}

	id2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st2, err := c.Wait(ctx, id2, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait 2: %v", err)
	}
	if st2.Result == nil || !st2.Result.PlanCacheHit {
		t.Error("second streamed job of the same shape missed the plan cache")
	}
}

// TestStreamedJobFromFile serves a distribution out of an on-disk
// Matrix Market file.
func TestStreamedJobFromFile(t *testing.T) {
	g := sparse.Uniform(40, 40, 0.15, 3)
	var buf bytes.Buffer
	if err := sparse.WriteText(&buf, sparse.FromDense(g)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.mtx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, c, _ := startDaemon(t, server.Config{QueueDepth: 8, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	id, err := c.Submit(ctx, server.JobSpec{
		Scheme: "CFS", Partition: "row", Procs: 4, Method: "CCS",
		Stream: true, SourceFile: path,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Wait(ctx, id, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state = %q (error %q), want done", st.State, st.Error)
	}
	if st.Result.Rows != 40 || st.Result.Cols != 40 {
		t.Errorf("geometry %dx%d, want 40x40", st.Result.Rows, st.Result.Cols)
	}
	if st.Result.NNZ != g.NNZ() {
		t.Errorf("NNZ = %d, want %d", st.Result.NNZ, g.NNZ())
	}
	if !st.Result.Streamed {
		t.Error("file-sourced result not flagged Streamed")
	}

	// A missing file must fail the job, not wedge it.
	id2, err := c.Submit(ctx, server.JobSpec{Stream: true, SourceFile: filepath.Join(t.TempDir(), "gone.mtx")})
	if err != nil {
		t.Fatalf("submit missing-file job: %v", err)
	}
	st2, err := c.Wait(ctx, id2, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait missing-file job: %v", err)
	}
	if st2.State != server.StateFailed {
		t.Errorf("missing-file job state = %q, want failed", st2.State)
	}
}

// TestStreamSpecValidation: the new spec fields reject incoherent
// combinations at admission.
func TestStreamSpecValidation(t *testing.T) {
	_, c, _ := startDaemon(t, server.Config{QueueDepth: 4, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bad := []server.JobSpec{
		{SourceFile: "a.mtx"},         // file without stream
		{MemBudget: 1 << 20},          // budget without stream
		{Stream: true, MemBudget: -1}, // negative budget
	}
	for i, spec := range bad {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestStreamRouteKeyDiscriminates: streamed and materializing jobs of
// the same shape must route (and dedup) differently.
func TestStreamRouteKeyDiscriminates(t *testing.T) {
	a := server.JobSpec{N: 64}
	b := server.JobSpec{N: 64, Stream: true}
	cfile := server.JobSpec{N: 64, Stream: true, SourceFile: "x.mtx"}
	if a.RouteKey() == b.RouteKey() {
		t.Error("streamed and materializing specs share a route key")
	}
	if b.RouteKey() == cfile.RouteKey() {
		t.Error("synthetic and file-sourced streamed specs share a route key")
	}
}
