package server_test

// End-to-end auto-tuning: a real httptest daemon driven through the
// typed client, the way a cluster client would submit scheme=auto work.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func TestAutoJobE2E(t *testing.T) {
	_, c, _ := startDaemon(t, server.Config{QueueDepth: 8, Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := server.JobSpec{N: 64, Scheme: "auto", Procs: 4, Check: true}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Wait(ctx, id, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state = %q, error %q", st.State, st.Error)
	}
	res := st.Result
	if !res.Auto {
		t.Fatal("result not flagged auto")
	}
	switch res.ChosenScheme {
	case "SFC", "CFS", "ED":
	default:
		t.Errorf("chosen_scheme = %q, want a concrete scheme", res.ChosenScheme)
	}
	if res.Scheme != res.ChosenScheme {
		t.Errorf("ran scheme %s but chose %s", res.Scheme, res.ChosenScheme)
	}
	if res.ChosenPartition == "" || res.ChosenMethod == "" {
		t.Errorf("chosen plan incomplete: partition %q, method %q", res.ChosenPartition, res.ChosenMethod)
	}
	if res.PredictedDistribution <= 0 {
		t.Error("no predicted distribution time in the result")
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phase report has %d phases, want 2", len(res.Phases))
	}
	// The submitted spec is echoed back canonicalised, still AUTO: the
	// resolution lives in the result, not in the spec.
	if st.Spec.Scheme != "AUTO" {
		t.Errorf("status spec scheme = %q, want AUTO", st.Spec.Scheme)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	key := `sparsedistd_auto_jobs_total{scheme="` + res.ChosenScheme + `"}`
	if m[key] < 1 {
		t.Errorf("%s = %g, want >= 1", key, m[key])
	}
	found := false
	for k := range m {
		if strings.HasPrefix(k, "sparsedistd_auto_scale{") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no sparsedistd_auto_scale gauge after an auto job")
	}

	// The typed client rejects the same conflicts the server does.
	if _, err := c.Submit(ctx, server.JobSpec{N: 64, Scheme: "auto", Method: "CRS"}); err == nil {
		t.Error("auto + explicit method accepted")
	}
	var apiErr *client.APIError
	if _, err := c.Submit(ctx, server.JobSpec{N: 64, Scheme: "auto", Stream: true}); !asAPIError(err, &apiErr) {
		t.Errorf("auto + stream: got %v, want *APIError", err)
	}
}
