// Package simnet is a deterministic discrete-event network simulator
// for the emulated multicomputer: messages travel hop by hop over
// Links with per-message latency and per-word serialisation time,
// links are occupied while a transfer crosses them (later transfers
// queue), and every charge lands on a virtual timeline with per-rank
// clocks and per-link occupancy statistics.
//
// The simulator is record-replay. While a run executes, each rank
// records its operations — compute charges, sends, receives — in its
// own program order (the only order that is deterministic under the Go
// scheduler); Finalize then replays the recorded operations as a
// discrete-event simulation, always advancing the globally earliest
// pending event with stable tiebreaks. The resulting timeline is a
// pure function of the per-rank operation sequences: it is invariant
// under the real-time interleaving of the recording goroutines (see
// TestNetworkInsertionOrderInvariance).
//
// The `uniform` topology — a dedicated link per (sender, receiver)
// pair priced at Latency = T_Startup, PerWord = T_Data — makes the
// replayed wire time exactly Messages·T_Startup + Elements·T_Data per
// sender, so the timeline's PaperBreakdown reproduces the legacy
// cost.Params.Time totals bit for bit (the parity contract pinned by
// core's TestSimnetUniformParity). Every other topology prices the
// same recorded traffic under contention, which is where the paper's
// Remark orderings start to move (costmodel.RemarksUnder).
package simnet

import (
	"sync"
	"time"

	"repro/internal/cost"
)

// Class labels where a compute charge lands in the paper's books. Wire
// time needs no class: sends are always distribution-phase work charged
// to the sending rank.
type Class uint8

const (
	// ClassWire is transport occupancy: serialisation plus queueing,
	// charged to the sender (the model counts each transfer once).
	ClassWire Class = iota
	// ClassRootDist is the root's distribution-side compute
	// (pack/convert/extract).
	ClassRootDist
	// ClassRootComp is the root's compression-side compute
	// (compress/encode).
	ClassRootComp
	// ClassRankDist is a receiver's distribution-side compute
	// (unpack/convert).
	ClassRankDist
	// ClassRankComp is a receiver's compression-side compute
	// (compress/decode).
	ClassRankComp

	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassWire:
		return "wire"
	case ClassRootDist:
		return "root-dist"
	case ClassRootComp:
		return "root-comp"
	case ClassRankDist:
		return "rank-dist"
	case ClassRankComp:
		return "rank-comp"
	default:
		return "class?"
	}
}

// Link is one directed communication channel. A transfer of w words
// occupies the link for Latency + w·PerWord; transfers arriving while
// the link is busy queue in arrival order (FCFS, deterministic ties).
type Link struct {
	Name    string
	Latency time.Duration // per message crossing the link
	PerWord time.Duration // serialisation time per payload word
}

// Transfer returns the time w words occupy the link.
func (l Link) Transfer(w int) time.Duration {
	return l.Latency + time.Duration(w)*l.PerWord
}

// opKind discriminates recorded operations.
type opKind uint8

const (
	opCompute opKind = iota
	opSend
	opRecv
)

// op is one recorded operation of a rank, in that rank's program order.
type op struct {
	kind  opKind
	class Class         // opCompute
	dur   time.Duration // opCompute
	msg   int           // opSend/opRecv: index into Network.msgs; -1 = unmatched recv
}

// message is one recorded point-to-point transfer.
type message struct {
	from, to, tag, words int
	// srcOp is the send's index in ops[from] — with the sender rank it
	// forms the deterministic identity used for every tiebreak.
	srcOp int
}

// fifoKey matches receives to sends the way the machine's transports
// deliver them: FIFO per (sender, receiver, tag).
type fifoKey struct{ from, to, tag int }

// Network records one run's operations against a topology and replays
// them into a Timeline. Recording methods are safe for concurrent use
// from the rank goroutines; each rank's operations must be recorded
// from a single goroutine at a time (true by construction in the
// machine's SPMD Run).
type Network struct {
	mu     sync.Mutex
	top    *Topology
	params cost.Params
	ops    [][]op
	msgs   []message
	fifos  map[fifoKey][]int
	tl     *Timeline // Finalize cache; cleared by Reset
}

// NewNetwork returns an empty recorder over the topology. params price
// compute charges (Charge) via cost.Params.Time.
func NewNetwork(top *Topology, params cost.Params) *Network {
	return &Network{
		top:    top,
		params: params,
		ops:    make([][]op, top.Ranks()),
		fifos:  make(map[fifoKey][]int),
	}
}

// Topology returns the network's topology.
func (n *Network) Topology() *Topology { return n.top }

// Send records rank `from` transmitting words payload words to rank
// `to` on tag. Out-of-range ranks are ignored (defensive: the machine
// validates destinations before sending).
func (n *Network) Send(from, to, tag, words int) {
	if n == nil || from < 0 || from >= n.top.Ranks() || to < 0 || to >= n.top.Ranks() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tl = nil
	id := len(n.msgs)
	n.msgs = append(n.msgs, message{from: from, to: to, tag: tag, words: words, srcOp: len(n.ops[from])})
	n.ops[from] = append(n.ops[from], op{kind: opSend, msg: id})
	k := fifoKey{from: from, to: to, tag: tag}
	n.fifos[k] = append(n.fifos[k], id)
}

// Recv records rank `rank` receiving the next message from `from` on
// tag. Matching is FIFO per (from, rank, tag), the delivery order of
// the machine's transports. A receive with no recorded send (control
// traffic that slipped through, or a reordering fault) is kept as an
// unmatched receive: it blocks nothing and charges nothing.
func (n *Network) Recv(rank, from, tag int) {
	if n == nil || rank < 0 || rank >= n.top.Ranks() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tl = nil
	id := -1
	k := fifoKey{from: from, to: rank, tag: tag}
	if q := n.fifos[k]; len(q) > 0 {
		id = q[0]
		if len(q) == 1 {
			delete(n.fifos, k)
		} else {
			n.fifos[k] = q[1:]
		}
	}
	n.ops[rank] = append(n.ops[rank], op{kind: opRecv, msg: id})
}

// Charge records compute work on a rank, priced by the network's
// params: Messages·T_Startup + Elements·T_Data + Ops·T_Operation. Wire
// classes belong to Send; Charge is for the compute mirror (encode,
// decode, pack, convert). Zero charges are dropped.
func (n *Network) Charge(rank int, class Class, c cost.Counter) {
	if n == nil {
		return
	}
	n.ChargeDuration(rank, class, n.params.Time(c))
}

// ChargeDuration records compute work as a raw virtual duration.
func (n *Network) ChargeDuration(rank int, class Class, d time.Duration) {
	if n == nil || d <= 0 || rank < 0 || rank >= n.top.Ranks() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tl = nil
	n.ops[rank] = append(n.ops[rank], op{kind: opCompute, class: class, dur: d})
}

// Reset clears every recorded operation so the network (and the pooled
// machine holding it) can be reused for another run.
func (n *Network) Reset() {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for r := range n.ops {
		n.ops[r] = n.ops[r][:0]
	}
	n.msgs = n.msgs[:0]
	n.fifos = make(map[fifoKey][]int)
	n.tl = nil
}
