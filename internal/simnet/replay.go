package simnet

// The replay engine: a discrete-event simulation over the recorded
// per-rank operation sequences. The loop always executes the globally
// earliest pending event — either a rank's next operation or an
// in-flight message's next hop — with stable tiebreaks, so the
// timeline is a pure function of the recorded sequences:
//
//   - events are ordered by virtual time first;
//   - at equal times, in-flight hops run before rank operations (they
//     were caused by strictly earlier sends, so they are physically
//     already on the wire);
//   - equal-time hops order by (sender rank, sender op index, hop);
//   - equal-time rank operations order by rank.
//
// Executing the global minimum is safe because no event can create
// work in another event's past: a rank's later operations start at or
// after its current candidate time, a hop's successor starts at or
// after the hop completes, and a blocked receive becomes runnable no
// earlier than its sender's current candidate time.

import (
	"container/heap"
	"time"
)

// hopEvent is one in-flight message arriving at its next link.
type hopEvent struct {
	at   time.Duration
	msg  int
	hop  int // index into the message's route
	from int // tiebreak identity: sender rank...
	seq  int // ...and sender op index
}

// hopHeap orders hop events by (at, from, seq, hop).
type hopHeap []hopEvent

func (h hopHeap) Len() int { return len(h) }
func (h hopHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	if h[a].from != h[b].from {
		return h[a].from < h[b].from
	}
	if h[a].seq != h[b].seq {
		return h[a].seq < h[b].seq
	}
	return h[a].hop < h[b].hop
}
func (h hopHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *hopHeap) Push(x interface{}) { *h = append(*h, x.(hopEvent)) }
func (h *hopHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// replay executes the DES over a snapshot of the recorded state.
type replay struct {
	top  *Topology
	ops  [][]op
	msgs []message

	clock     []time.Duration
	cursor    []int
	free      []time.Duration // link occupied-until times
	busy      [][numClasses]time.Duration
	wait      []time.Duration
	deliver   []time.Duration
	delivered []bool
	hops      hopHeap
	links     []LinkStat
	events    []TimedEvent
	unmatched int
}

// Finalize replays the recorded operations and returns the timeline.
// The result is cached until the next recording call or Reset, so
// repeated reads are free. Recording more operations after Finalize
// invalidates the cache and a later Finalize sees the full history.
func (n *Network) Finalize() *Timeline {
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tl != nil {
		return n.tl
	}
	r := &replay{top: n.top, ops: n.ops, msgs: n.msgs}
	n.tl = r.run()
	n.tl.Topology = n.top.Name
	n.tl.P = n.top.Ranks()
	return n.tl
}

func (r *replay) run() *Timeline {
	p := r.top.Ranks()
	r.clock = make([]time.Duration, p)
	r.cursor = make([]int, p)
	r.busy = make([][numClasses]time.Duration, p)
	r.wait = make([]time.Duration, p)
	r.free = make([]time.Duration, len(r.top.Links))
	r.deliver = make([]time.Duration, len(r.msgs))
	r.delivered = make([]bool, len(r.msgs))
	r.links = make([]LinkStat, len(r.top.Links))
	for i, l := range r.top.Links {
		r.links[i].Name = l.Name
	}

	for {
		rank, rankAt, rankOK := r.nextRank()
		hopOK := len(r.hops) > 0
		switch {
		case hopOK && (!rankOK || r.hops[0].at <= rankAt):
			r.runHop(heap.Pop(&r.hops).(hopEvent))
		case rankOK:
			r.runOp(rank)
		default:
			if !r.unstick() {
				return r.timeline()
			}
		}
	}
}

// nextRank returns the lowest-ranked runnable rank with the earliest
// candidate time, or ok=false when every rank is finished or blocked.
func (r *replay) nextRank() (rank int, at time.Duration, ok bool) {
	for q := 0; q < len(r.ops); q++ {
		c := r.cursor[q]
		if c >= len(r.ops[q]) {
			continue
		}
		o := r.ops[q][c]
		t := r.clock[q]
		if o.kind == opRecv && o.msg >= 0 {
			if !r.delivered[o.msg] {
				continue // blocked
			}
			if d := r.deliver[o.msg]; d > t {
				t = d
			}
		}
		if !ok || t < at {
			rank, at, ok = q, t, true
		}
	}
	return rank, at, ok
}

// runHop advances one in-flight message across its next link.
func (r *replay) runHop(ev hopEvent) {
	m := r.msgs[ev.msg]
	route := r.top.Route(m.from, m.to)
	li := route[ev.hop]
	start := ev.at
	if f := r.free[li]; f > start {
		start = f
	}
	end := start + r.top.Links[li].Transfer(m.words)
	r.chargeLink(li, m.words, end-start, start-ev.at, end)
	r.free[li] = end
	if ev.hop == len(route)-1 {
		r.deliver[ev.msg] = end
		r.delivered[ev.msg] = true
		return
	}
	heap.Push(&r.hops, hopEvent{at: end, msg: ev.msg, hop: ev.hop + 1, from: m.from, seq: m.srcOp})
}

// runOp executes the rank's next recorded operation.
func (r *replay) runOp(rank int) {
	o := r.ops[rank][r.cursor[rank]]
	r.cursor[rank]++
	switch o.kind {
	case opCompute:
		start := r.clock[rank]
		r.clock[rank] += o.dur
		r.busy[rank][o.class] += o.dur
		r.events = append(r.events, TimedEvent{
			Kind: EvCompute, Rank: rank, Peer: -1, Class: o.class,
			Start: start, End: r.clock[rank],
		})
	case opSend:
		r.runSend(rank, o)
	case opRecv:
		if o.msg < 0 {
			r.unmatched++
			return
		}
		m := r.msgs[o.msg]
		start := r.clock[rank]
		at := r.deliver[o.msg]
		if at > start {
			r.wait[rank] += at - start
			r.clock[rank] = at
		}
		r.events = append(r.events, TimedEvent{
			Kind: EvRecv, Rank: rank, Peer: m.from, Tag: m.tag, Words: m.words,
			Start: r.clock[rank], End: r.clock[rank],
		})
	}
}

// runSend serialises the message onto the first link of its route: the
// sender blocks until the link is free and the payload has crossed it
// (queueing delay is the sender's problem — that is the contention
// signal). Later hops propagate as heap events; an empty route is
// local delivery and costs nothing.
func (r *replay) runSend(rank int, o op) {
	m := r.msgs[o.msg]
	route := r.top.Route(m.from, m.to)
	before := r.clock[rank]
	if len(route) == 0 {
		r.deliver[o.msg] = before
		r.delivered[o.msg] = true
		r.events = append(r.events, TimedEvent{
			Kind: EvSend, Rank: rank, Peer: m.to, Tag: m.tag, Words: m.words,
			Start: before, End: before,
		})
		return
	}
	li := route[0]
	start := before
	if f := r.free[li]; f > start {
		start = f
	}
	end := start + r.top.Links[li].Transfer(m.words)
	r.chargeLink(li, m.words, end-start, start-before, end)
	r.free[li] = end
	r.clock[rank] = end
	r.busy[rank][ClassWire] += end - before
	if len(route) == 1 {
		r.deliver[o.msg] = end
		r.delivered[o.msg] = true
	} else {
		heap.Push(&r.hops, hopEvent{at: end, msg: o.msg, hop: 1, from: m.from, seq: m.srcOp})
	}
	r.events = append(r.events, TimedEvent{
		Kind: EvSend, Rank: rank, Peer: m.to, Tag: m.tag, Words: m.words,
		Start: before, End: end, Queue: start - before,
	})
}

func (r *replay) chargeLink(li, words int, busy, queue, lastEnd time.Duration) {
	st := &r.links[li]
	st.Transfers++
	st.Words += int64(words)
	st.Busy += busy
	st.Queue += queue
	if lastEnd > st.LastEnd {
		st.LastEnd = lastEnd
	}
}

// unstick breaks a receive that can never be satisfied — possible only
// when the runtime matched messages in a different order than the
// recorded FIFOs (a reordering fault). The lowest-ranked blocked
// receive is released in place, uncharged, and counted as unmatched.
// Returns false when nothing is blocked (the replay is complete).
func (r *replay) unstick() bool {
	for q := 0; q < len(r.ops); q++ {
		if r.cursor[q] < len(r.ops[q]) {
			r.cursor[q]++
			r.unmatched++
			return true
		}
	}
	return false
}

func (r *replay) timeline() *Timeline {
	tl := &Timeline{
		Events:    r.events,
		Links:     r.links,
		Clock:     r.clock,
		Wait:      r.wait,
		Unmatched: r.unmatched,
	}
	tl.Busy = make([][]time.Duration, len(r.busy))
	for q := range r.busy {
		tl.Busy[q] = append([]time.Duration(nil), r.busy[q][:]...)
	}
	for _, c := range r.clock {
		if c > tl.Makespan {
			tl.Makespan = c
		}
	}
	for i := range r.delivered {
		if r.delivered[i] && r.deliver[i] > tl.Makespan {
			tl.Makespan = r.deliver[i]
		}
	}
	for _, l := range r.links {
		if l.LastEnd > tl.Makespan {
			tl.Makespan = l.LastEnd
		}
	}
	return tl
}
