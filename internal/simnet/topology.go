package simnet

// Topology builders. Every topology is a set of directed Links plus a
// static route (a link sequence) per (from, to) pair. Routes are
// store-and-forward: each hop pays the link's full Latency +
// words·PerWord, and occupies the link for that long.
//
// Link pricing: "access" links default to the cost model's units
// (Latency = T_Startup, PerWord = T_Data), so an uncongested
// single-hop route prices exactly like the legacy flat clock. The
// -link-bw / -link-latency overrides apply to each topology's
// *bottleneck* links — the shared bus, the star's root access link,
// every mesh link, the fat tree's core links — which is how a
// congested regime is dialled in without touching the leaf links. For
// the uniform topology (no bottleneck by construction) the overrides
// apply to every link.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cost"
)

// Topology is a routed link graph over p ranks.
type Topology struct {
	Name  string
	Links []Link
	// routes[from][to] is the link index sequence a message crosses; an
	// empty route is free local delivery.
	routes [][][]int
}

// Ranks returns the processor count.
func (t *Topology) Ranks() int { return len(t.routes) }

// Route returns the link sequence from one rank to another.
func (t *Topology) Route(from, to int) []int { return t.routes[from][to] }

// RouteCharge prices one uncontended transfer along the route: the sum
// of every hop's Latency + words·PerWord. The model transport uses it
// to sleep topology-aware wire time; an empty route charges nothing
// (local delivery).
func (t *Topology) RouteCharge(from, to, words int) time.Duration {
	if from < 0 || from >= t.Ranks() || to < 0 || to >= t.Ranks() {
		return 0
	}
	var d time.Duration
	for _, li := range t.routes[from][to] {
		d += t.Links[li].Transfer(words)
	}
	return d
}

// newTopology allocates an empty p-rank topology.
func newTopology(name string, p int) *Topology {
	t := &Topology{Name: name}
	t.routes = make([][][]int, p)
	for i := range t.routes {
		t.routes[i] = make([][]int, p)
	}
	return t
}

// addLink appends a link and returns its index.
func (t *Topology) addLink(l Link) int {
	t.Links = append(t.Links, l)
	return len(t.Links) - 1
}

// TopologyNames lists the builders for CLI help strings.
func TopologyNames() string { return "uniform, bus, star, mesh, fattree" }

// ValidTopology reports whether name is a known topology (empty means
// "no network model" and is also valid for flag validation).
func ValidTopology(name string) bool {
	switch name {
	case "", "uniform", "bus", "star", "mesh", "fattree":
		return true
	}
	return false
}

// Build constructs the named topology for p ranks. params set the
// default link pricing (Latency = T_Startup, PerWord = T_Data);
// linkBW (payload words per second) and linkLatency, when positive,
// override the topology's bottleneck links as described in the package
// comment. Zero values keep the defaults.
func Build(name string, p int, params cost.Params, linkBW float64, linkLatency time.Duration) (*Topology, error) {
	if p <= 0 {
		return nil, fmt.Errorf("simnet: processor count %d must be positive", p)
	}
	if linkBW < 0 || math.IsNaN(linkBW) || math.IsInf(linkBW, 0) {
		return nil, fmt.Errorf("simnet: link bandwidth %g must be a finite non-negative words/s", linkBW)
	}
	if linkLatency < 0 {
		return nil, fmt.Errorf("simnet: link latency %v must be non-negative", linkLatency)
	}
	base := Link{Latency: params.TStartup, PerWord: params.TData}
	hot := base
	if linkLatency > 0 {
		hot.Latency = linkLatency
	}
	if linkBW > 0 {
		hot.PerWord = time.Duration(float64(time.Second) / linkBW)
	}
	switch name {
	case "uniform":
		return buildUniform(p, hot), nil
	case "bus":
		return buildBus(p, hot), nil
	case "star":
		return buildStar(p, base, hot), nil
	case "mesh":
		return buildMesh(p, hot), nil
	case "fattree":
		return buildFatTree(p, base, hot), nil
	default:
		return nil, fmt.Errorf("simnet: unknown topology %q (want %s)", name, TopologyNames())
	}
}

// buildUniform gives every ordered pair — including self-delivery —
// its own dedicated link, so transfers never contend and each send
// prices exactly Latency + words·PerWord. With default pricing this is
// the legacy flat clock as a topology (the parity anchor); the
// self-loop link is deliberately kept charged, matching the counter
// model where a root's send to itself pays the full wire cost.
func buildUniform(p int, l Link) *Topology {
	t := newTopology("uniform", p)
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			li := t.addLink(Link{Name: fmt.Sprintf("u%d>%d", from, to), Latency: l.Latency, PerWord: l.PerWord})
			t.routes[from][to] = []int{li}
		}
	}
	return t
}

// buildBus routes every remote transfer over one shared link — the
// maximally contended topology. Self-delivery is local and free.
func buildBus(p int, l Link) *Topology {
	t := newTopology("bus", p)
	li := t.addLink(Link{Name: "bus", Latency: l.Latency, PerWord: l.PerWord})
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if from != to {
				t.routes[from][to] = []int{li}
			}
		}
	}
	return t
}

// buildStar connects every rank to a central hub with an up and a down
// link. Rank 0's access pair is the *root link* — every distribution
// byte crosses it — and is the one the bandwidth/latency overrides
// congest; leaves keep the base pricing. Self-delivery is free.
func buildStar(p int, base, hot Link) *Topology {
	t := newTopology("star", p)
	up := make([]int, p)
	down := make([]int, p)
	for r := 0; r < p; r++ {
		l := base
		if r == 0 {
			l = hot
		}
		up[r] = t.addLink(Link{Name: fmt.Sprintf("up%d", r), Latency: l.Latency, PerWord: l.PerWord})
		down[r] = t.addLink(Link{Name: fmt.Sprintf("down%d", r), Latency: l.Latency, PerWord: l.PerWord})
	}
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if from != to {
				t.routes[from][to] = []int{up[from], down[to]}
			}
		}
	}
	return t
}

// buildMesh arranges the ranks on the most square pr × pc grid with
// bidirectional links between neighbours and XY dimension-ordered
// routing (move along the row to the target column, then along the
// column). Self-delivery is free.
func buildMesh(p int, l Link) *Topology {
	pr, pc := squareGrid(p)
	t := newTopology("mesh", p)
	// hlink[r][c] / vlink[r][c]: directed links between grid neighbours.
	link := make(map[[2]int]int, 4*p)
	id := func(r, c int) int { return r*pc + c }
	addEdge := func(a, b int) {
		if _, ok := link[[2]int{a, b}]; !ok {
			link[[2]int{a, b}] = t.addLink(Link{Name: fmt.Sprintf("m%d>%d", a, b), Latency: l.Latency, PerWord: l.PerWord})
		}
	}
	for r := 0; r < pr; r++ {
		for c := 0; c < pc; c++ {
			if c+1 < pc {
				addEdge(id(r, c), id(r, c+1))
				addEdge(id(r, c+1), id(r, c))
			}
			if r+1 < pr {
				addEdge(id(r, c), id(r+1, c))
				addEdge(id(r+1, c), id(r, c))
			}
		}
	}
	for from := 0; from < p; from++ {
		fr, fc := from/pc, from%pc
		for to := 0; to < p; to++ {
			if from == to {
				continue
			}
			tr, tc := to/pc, to%pc
			var route []int
			r, c := fr, fc
			for c != tc {
				nc := c + 1
				if tc < c {
					nc = c - 1
				}
				route = append(route, link[[2]int{id(r, c), id(r, nc)}])
				c = nc
			}
			for r != tr {
				nr := r + 1
				if tr < r {
					nr = r - 1
				}
				route = append(route, link[[2]int{id(r, c), id(nr, c)}])
				r = nr
			}
			t.routes[from][to] = route
		}
	}
	return t
}

// buildFatTree is a two-level tree: ranks group under edge switches of
// size ⌈√p⌉; each edge switch connects to a single core. Core links
// carry a whole group's traffic but are "fat" — their per-word time is
// the base divided by the group size — so the tree is balanced by
// default; the overrides apply to the core links, which is where a
// congested spine is dialled in. Same-group traffic never leaves the
// edge switch. Self-delivery is free.
func buildFatTree(p int, base, hot Link) *Topology {
	g := int(math.Ceil(math.Sqrt(float64(p))))
	if g < 1 {
		g = 1
	}
	t := newTopology("fattree", p)
	nSw := (p + g - 1) / g
	up := make([]int, p)
	down := make([]int, p)
	for r := 0; r < p; r++ {
		up[r] = t.addLink(Link{Name: fmt.Sprintf("up%d", r), Latency: base.Latency, PerWord: base.PerWord})
		down[r] = t.addLink(Link{Name: fmt.Sprintf("down%d", r), Latency: base.Latency, PerWord: base.PerWord})
	}
	coreUp := make([]int, nSw)
	coreDown := make([]int, nSw)
	for s := 0; s < nSw; s++ {
		core := Link{Latency: base.Latency, PerWord: base.PerWord / time.Duration(g)}
		if hot != base {
			core = hot // an explicit override prices the spine verbatim
		}
		coreUp[s] = t.addLink(Link{Name: fmt.Sprintf("coreup%d", s), Latency: core.Latency, PerWord: core.PerWord})
		coreDown[s] = t.addLink(Link{Name: fmt.Sprintf("coredown%d", s), Latency: core.Latency, PerWord: core.PerWord})
	}
	sw := func(r int) int { return r / g }
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if from == to {
				continue
			}
			if sw(from) == sw(to) {
				t.routes[from][to] = []int{up[from], down[to]}
			} else {
				t.routes[from][to] = []int{up[from], coreUp[sw(from)], coreDown[sw(to)], down[to]}
			}
		}
	}
	return t
}

// squareGrid returns the most square pr × pc factorisation of p.
func squareGrid(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best, p / best
}
