package simnet

// Timeline: the replayed run. Everything here is virtual time — a pure
// function of the recorded operation sequences and the topology — so
// two identical runs produce byte-identical reports and equal hashes.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"repro/internal/trace"
)

// EvKind classifies a timeline event.
type EvKind uint8

const (
	// EvSend is a message leaving its sender (End includes first-link
	// serialisation and any queueing, charged to the sender).
	EvSend EvKind = iota
	// EvRecv is a matched receive completing at the receiver.
	EvRecv
	// EvCompute is a compute charge span.
	EvCompute
)

// TimedEvent is one virtually timed occurrence.
type TimedEvent struct {
	Kind  EvKind
	Rank  int
	Peer  int // destination (send) or source (recv); -1 for computes
	Tag   int
	Words int
	Class Class // computes only
	Start time.Duration
	End   time.Duration
	Queue time.Duration // sends: time spent waiting for the first link
}

// LinkStat is one link's replayed occupancy.
type LinkStat struct {
	Name      string
	Transfers int
	Words     int64
	Busy      time.Duration // time the link was serialising payload
	Queue     time.Duration // total arrival-to-start queueing delay
	LastEnd   time.Duration // when the link's last transfer completed
}

// Utilization returns Busy as a fraction of the makespan.
func (l LinkStat) Utilization(makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(l.Busy) / float64(makespan)
}

// Timeline is the replayed virtual schedule of one run.
type Timeline struct {
	Topology string
	P        int
	Events   []TimedEvent
	Links    []LinkStat
	// Clock is each rank's completion time; Busy its per-class busy
	// time (indexed by Class); Wait its total blocked-receive idle.
	Clock []time.Duration
	Busy  [][]time.Duration
	Wait  []time.Duration
	// Makespan is the end of the last event anywhere — clocks, message
	// deliveries and link drains included.
	Makespan time.Duration
	// Unmatched counts receives the replay could not pair with a
	// recorded send (reordering faults); zero on clean runs.
	Unmatched int
}

// Breakdown is the paper-shaped account of a replayed distribution:
// the root works sequentially (its wire and compute charges add up)
// while receivers work in parallel (max over ranks) — the same
// combination rule as dist.Breakdown, but priced under the topology.
type Breakdown struct {
	Distribution time.Duration
	Compression  time.Duration
	Makespan     time.Duration
}

// Total returns distribution + compression.
func (b Breakdown) Total() time.Duration { return b.Distribution + b.Compression }

// PaperBreakdown folds the per-class busy times with the paper's rule:
//
//	T_Distribution = wire(root) + root-dist(root) + max_k rank-dist(k)
//	T_Compression  = root-comp(root) + max_k rank-comp(k)
//
// Receive-side idle waiting is excluded, matching the model's
// convention of counting each transfer once at the sender. Under the
// uniform topology these totals equal the legacy counter totals
// exactly; under contended topologies the wire term grows by the
// queueing delay the root actually suffered.
func (t *Timeline) PaperBreakdown() Breakdown {
	b := Breakdown{Makespan: t.Makespan}
	if len(t.Busy) == 0 {
		return b
	}
	root := t.Busy[0]
	b.Distribution = root[ClassWire] + root[ClassRootDist]
	b.Compression = root[ClassRootComp]
	var maxDist, maxComp time.Duration
	for _, busy := range t.Busy {
		if d := busy[ClassRankDist]; d > maxDist {
			maxDist = d
		}
		if c := busy[ClassRankComp]; c > maxComp {
			maxComp = c
		}
	}
	b.Distribution += maxDist
	b.Compression += maxComp
	return b
}

// Hash returns a 64-bit FNV-1a digest of the whole timeline — events,
// per-rank clocks and per-link stats — for cheap determinism checks:
// two runs of the same workload must hash identically.
func (t *Timeline) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	w(int64(t.P))
	w(int64(len(t.Events)))
	for _, e := range t.Events {
		w(int64(e.Kind))
		w(int64(e.Rank))
		w(int64(e.Peer))
		w(int64(e.Tag))
		w(int64(e.Words))
		w(int64(e.Class))
		w(int64(e.Start))
		w(int64(e.End))
		w(int64(e.Queue))
	}
	for _, l := range t.Links {
		h.Write([]byte(l.Name))
		w(int64(l.Transfers))
		w(l.Words)
		w(int64(l.Busy))
		w(int64(l.Queue))
		w(int64(l.LastEnd))
	}
	for _, c := range t.Clock {
		w(int64(c))
	}
	for _, d := range t.Wait {
		w(int64(d))
	}
	return h.Sum64()
}

// TraceEvents exports the timeline as trace events carrying virtual
// timestamps (VAt/VDur), ready for trace.RenderTimeline and
// trace.RenderGantt. The export is deterministic: events come out in
// replay order, which the renderers stably re-sort by (VAt, Rank, Tag).
func (t *Timeline) TraceEvents() []trace.Event {
	out := make([]trace.Event, 0, len(t.Events))
	for _, e := range t.Events {
		te := trace.Event{
			Rank: e.Rank, Peer: e.Peer, Tag: e.Tag, Words: e.Words,
			VAt: e.Start, VDur: e.End - e.Start, Virtual: true,
		}
		switch e.Kind {
		case EvSend:
			te.Kind = trace.Send
		case EvRecv:
			te.Kind = trace.Recv
		default:
			te.Kind = trace.Span
			te.Label = e.Class.String()
		}
		out = append(out, te)
	}
	return out
}

// LinkReport renders the per-link occupancy table: one row per link
// that carried traffic, in link creation order, with utilization
// relative to the makespan. Fully virtual, hence deterministic.
func (t *Timeline) LinkReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %12s %14s %14s %6s\n", "link", "transfers", "words", "busy", "queued", "util")
	for _, l := range t.Links {
		if l.Transfers == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9d %12d %14v %14v %5.1f%%\n",
			l.Name, l.Transfers, l.Words, l.Busy, l.Queue, 100*l.Utilization(t.Makespan))
	}
	return b.String()
}

// MaxLinkUtilization returns the highest per-link utilization.
func (t *Timeline) MaxLinkUtilization() float64 {
	var m float64
	for _, l := range t.Links {
		if u := l.Utilization(t.Makespan); u > m {
			m = u
		}
	}
	return m
}

// TotalQueue returns the summed queueing delay across all links — the
// scalar congestion signal (zero on the uniform topology).
func (t *Timeline) TotalQueue() time.Duration {
	var q time.Duration
	for _, l := range t.Links {
		q += l.Queue
	}
	return q
}

// Report renders the deterministic network section of a run report:
// the paper-shaped totals, the makespan, and the link table.
func (t *Timeline) Report() string {
	var b strings.Builder
	pb := t.PaperBreakdown()
	fmt.Fprintf(&b, "network model: topology=%s p=%d\n", t.Topology, t.P)
	fmt.Fprintf(&b, "sim T_Distribution %v, T_Compression %v, makespan %v, queued %v\n",
		pb.Distribution, pb.Compression, pb.Makespan, t.TotalQueue())
	if t.Unmatched > 0 {
		fmt.Fprintf(&b, "unmatched receives: %d\n", t.Unmatched)
	}
	b.WriteString(t.LinkReport())
	return b.String()
}
