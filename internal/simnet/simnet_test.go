package simnet

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
)

var testParams = cost.DefaultParams

func mustBuild(t *testing.T, name string, p int, bw float64, lat time.Duration) *Topology {
	t.Helper()
	top, err := Build(name, p, testParams, bw, lat)
	if err != nil {
		t.Fatalf("Build(%s, %d): %v", name, p, err)
	}
	return top
}

// TestUniformParity pins the parity contract on a hand-built workload:
// under the uniform topology the replayed wire time per sender is
// exactly Messages·T_Startup + Elements·T_Data, and compute charges
// price via cost.Params.Time, so PaperBreakdown equals the counter
// totals bit for bit.
func TestUniformParity(t *testing.T) {
	const p = 4
	net := NewNetwork(mustBuild(t, "uniform", p, 0, 0), testParams)

	// Root: encode part k (comp), pack part k (dist), send part k.
	var rootComp, rootDist, rootWire cost.Counter
	rankRecv := make([]cost.Counter, p)
	for k := 0; k < p; k++ {
		comp := cost.Counter{Ops: int64(100 * (k + 1))}
		dist := cost.Counter{Ops: int64(10 * (k + 1)), Elements: int64(5 * k)}
		words := 50 + 10*k
		net.Charge(0, ClassRootComp, comp)
		net.Charge(0, ClassRootDist, dist)
		net.Send(0, k, 7, words)
		rootComp.Add(comp)
		rootDist.Add(dist)
		rootWire.AddSend(words)
	}
	for k := 0; k < p; k++ {
		net.Recv(k, 0, 7)
		dec := cost.Counter{Ops: int64(200 * (k + 1))}
		net.Charge(k, ClassRankComp, dec)
		rankRecv[k] = dec
	}

	tl := net.Finalize()
	if tl.Unmatched != 0 {
		t.Fatalf("unmatched receives: %d", tl.Unmatched)
	}
	pb := tl.PaperBreakdown()

	wantDist := testParams.Time(rootWire) + testParams.Time(rootDist)
	var maxComp time.Duration
	for k := 0; k < p; k++ {
		if d := testParams.Time(rankRecv[k]); d > maxComp {
			maxComp = d
		}
	}
	wantComp := testParams.Time(rootComp) + maxComp
	if pb.Distribution != wantDist {
		t.Errorf("Distribution = %v, want %v", pb.Distribution, wantDist)
	}
	if pb.Compression != wantComp {
		t.Errorf("Compression = %v, want %v", pb.Compression, wantComp)
	}
	if q := tl.TotalQueue(); q != 0 {
		t.Errorf("uniform topology queued %v, want 0", q)
	}
}

// TestUniformSelfSendCharged pins the legacy behaviour the parity
// contract depends on: a uniform self-send pays the full wire charge.
func TestUniformSelfSendCharged(t *testing.T) {
	net := NewNetwork(mustBuild(t, "uniform", 2, 0, 0), testParams)
	const words = 100
	net.Send(0, 0, 1, words)
	net.Recv(0, 0, 1)
	tl := net.Finalize()
	want := testParams.TStartup + words*testParams.TData
	if got := tl.Busy[0][ClassWire]; got != want {
		t.Errorf("self-send wire busy = %v, want %v", got, want)
	}
}

// TestNonUniformSelfSendFree: every routed topology delivers self-sends
// locally at zero cost (empty route).
func TestNonUniformSelfSendFree(t *testing.T) {
	for _, name := range []string{"bus", "star", "mesh", "fattree"} {
		net := NewNetwork(mustBuild(t, name, 4, 0, 0), testParams)
		net.Send(2, 2, 1, 1000)
		net.Recv(2, 2, 1)
		tl := net.Finalize()
		if got := tl.Busy[2][ClassWire]; got != 0 {
			t.Errorf("%s: self-send wire busy = %v, want 0", name, got)
		}
		if tl.Makespan != 0 {
			t.Errorf("%s: makespan = %v, want 0", name, tl.Makespan)
		}
	}
}

// TestBusContention: two senders share the bus, so the second transfer
// queues behind the first and the link reports the queueing delay.
func TestBusContention(t *testing.T) {
	net := NewNetwork(mustBuild(t, "bus", 3, 0, 0), testParams)
	const words = 1000
	xfer := testParams.TStartup + words*testParams.TData
	net.Send(0, 2, 1, words)
	net.Send(1, 2, 2, words)
	net.Recv(2, 0, 1)
	net.Recv(2, 1, 2)
	tl := net.Finalize()

	if got := tl.TotalQueue(); got != xfer {
		t.Errorf("queued = %v, want %v (one transfer blocked behind the other)", got, xfer)
	}
	if want := 2 * xfer; tl.Makespan != want {
		t.Errorf("makespan = %v, want %v", tl.Makespan, want)
	}
	// The queued sender's wire busy includes the wait (sender blocks on
	// the first link).
	if got := tl.Busy[1][ClassWire]; got != 2*xfer {
		t.Errorf("queued sender wire busy = %v, want %v", got, 2*xfer)
	}
	if got := tl.Busy[0][ClassWire]; got != xfer {
		t.Errorf("first sender wire busy = %v, want %v", got, xfer)
	}
}

// TestStarCongestedRootLink: overriding the bandwidth prices rank 0's
// access pair hot while leaf links stay at base, so a root-to-leaf
// transfer slows down by exactly the up-link difference.
func TestStarCongestedRootLink(t *testing.T) {
	const bw = 1e6 // words/s => 1µs per word, ~11x T_Data
	hotPerWord := time.Duration(float64(time.Second) / bw)
	top := mustBuild(t, "star", 4, bw, 0)
	const words = 500

	// Route 0→1 crosses hot up0 then base down1.
	want := (testParams.TStartup + words*hotPerWord) + (testParams.TStartup + words*testParams.TData)
	if got := top.RouteCharge(0, 1, words); got != want {
		t.Errorf("RouteCharge(0,1) = %v, want %v", got, want)
	}
	// Leaf-to-leaf traffic avoids the hot pair entirely.
	wantLeaf := 2 * (testParams.TStartup + words*testParams.TData)
	if got := top.RouteCharge(2, 3, words); got != wantLeaf {
		t.Errorf("RouteCharge(2,3) = %v, want %v", got, wantLeaf)
	}
}

// TestMeshRoutes checks XY routing hop counts on a 2x2 grid.
func TestMeshRoutes(t *testing.T) {
	top := mustBuild(t, "mesh", 4, 0, 0) // 2x2: ranks 0 1 / 2 3
	cases := []struct{ from, to, hops int }{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {3, 0, 2}, {1, 2, 2}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := len(top.Route(c.from, c.to)); got != c.hops {
			t.Errorf("mesh route %d->%d: %d hops, want %d", c.from, c.to, got, c.hops)
		}
	}
}

// TestFatTreeRoutes: same-group traffic stays on the edge switch (2
// hops); cross-group traffic crosses the core (4 hops).
func TestFatTreeRoutes(t *testing.T) {
	top := mustBuild(t, "fattree", 4, 0, 0) // g=2: groups {0,1} {2,3}
	if got := len(top.Route(0, 1)); got != 2 {
		t.Errorf("same-group route: %d hops, want 2", got)
	}
	if got := len(top.Route(0, 3)); got != 4 {
		t.Errorf("cross-group route: %d hops, want 4", got)
	}
}

// TestBuildValidation covers the flag-facing error cases.
func TestBuildValidation(t *testing.T) {
	if _, err := Build("uniform", 0, testParams, 0, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Build("uniform", 4, testParams, -1, 0); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := Build("uniform", 4, testParams, 0, -time.Second); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := Build("hypercube", 4, testParams, 0, 0); err == nil {
		t.Error("unknown topology accepted")
	}
	for _, name := range []string{"uniform", "bus", "star", "mesh", "fattree"} {
		if !ValidTopology(name) {
			t.Errorf("ValidTopology(%q) = false", name)
		}
		if _, err := Build(name, 7, testParams, 0, 0); err != nil {
			t.Errorf("Build(%s, 7): %v", name, err)
		}
	}
	if !ValidTopology("") {
		t.Error(`ValidTopology("") = false`)
	}
	if ValidTopology("ring") {
		t.Error(`ValidTopology("ring") = true`)
	}
}

// TestUnmatchedRecv: a receive with no recorded send charges nothing
// and is surfaced in the timeline.
func TestUnmatchedRecv(t *testing.T) {
	net := NewNetwork(mustBuild(t, "uniform", 2, 0, 0), testParams)
	net.Recv(1, 0, 9)
	tl := net.Finalize()
	if tl.Unmatched != 1 {
		t.Errorf("unmatched = %d, want 1", tl.Unmatched)
	}
	if tl.Makespan != 0 {
		t.Errorf("makespan = %v, want 0", tl.Makespan)
	}
}

// TestFinalizeCacheAndReset: Finalize caches until new recordings or
// Reset invalidate it; Reset yields an empty timeline.
func TestFinalizeCacheAndReset(t *testing.T) {
	net := NewNetwork(mustBuild(t, "uniform", 2, 0, 0), testParams)
	net.Send(0, 1, 1, 10)
	net.Recv(1, 0, 1)
	tl1 := net.Finalize()
	if tl2 := net.Finalize(); tl2 != tl1 {
		t.Error("repeated Finalize did not return the cached timeline")
	}
	net.Charge(0, ClassRootComp, cost.Counter{Ops: 5})
	tl3 := net.Finalize()
	if tl3 == tl1 {
		t.Error("recording after Finalize did not invalidate the cache")
	}
	if tl3.Busy[0][ClassRootComp] == 0 {
		t.Error("post-cache recording missing from new timeline")
	}
	net.Reset()
	tl4 := net.Finalize()
	if len(tl4.Events) != 0 || tl4.Makespan != 0 {
		t.Errorf("after Reset: %d events, makespan %v; want empty", len(tl4.Events), tl4.Makespan)
	}
}

// recordWorkload drives a fixed multi-rank workload against net with
// the rank goroutines interleaving however the scheduler (plus seeded
// jitter) decides. Causality matches the real machine: a receive is
// recorded only after its send has been recorded.
func recordWorkload(net *Network, p int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	jitters := make([]time.Duration, p)
	for i := range jitters {
		jitters[i] = time.Duration(rng.Intn(200)) * time.Microsecond
	}
	sent := make([]chan struct{}, p)
	for i := range sent {
		sent[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			time.Sleep(jitters[rank])
			if rank == 0 {
				for k := 0; k < p; k++ {
					net.Charge(0, ClassRootComp, cost.Counter{Ops: int64(50 + k)})
					net.Send(0, k, 3, 20+k)
					if k > 0 {
						close(sent[k])
					}
				}
				net.Recv(0, 0, 3)
				return
			}
			<-sent[rank]
			net.Recv(rank, 0, 3)
			net.Charge(rank, ClassRankDist, cost.Counter{Ops: int64(30 * rank)})
			net.Send(rank, 0, 4, 5)
		}(q)
	}
	wg.Wait()
	// Rank 0 drains the acks after every sender is done (FIFO per
	// (from,to,tag) keeps the matching deterministic).
	for q := 1; q < p; q++ {
		net.Recv(0, q, 4)
	}
}

// TestNetworkInsertionOrderInvariance is the determinism property test:
// the replayed timeline is a pure function of the per-rank operation
// sequences, so recording the same workload under different goroutine
// interleavings must hash identically.
func TestNetworkInsertionOrderInvariance(t *testing.T) {
	const p = 5
	var want uint64
	for trial := 0; trial < 8; trial++ {
		net := NewNetwork(mustBuild(t, "star", p, 0, 0), testParams)
		recordWorkload(net, p, int64(trial)*7919)
		got := net.Finalize().Hash()
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d: timeline hash %x != %x — replay depends on recording interleaving", trial, got, want)
		}
	}
}

// TestReplayTwiceIdentical: two independent replays of identical
// recordings agree event for event (the -race determinism check).
func TestReplayTwiceIdentical(t *testing.T) {
	mk := func() *Timeline {
		net := NewNetwork(mustBuild(t, "mesh", 6, 0, 0), testParams)
		for k := 1; k < 6; k++ {
			net.Send(0, k, 1, 100*k)
		}
		for k := 1; k < 6; k++ {
			net.Recv(k, 0, 1)
			net.Charge(k, ClassRankComp, cost.Counter{Ops: int64(k * 1000)})
		}
		return net.Finalize()
	}
	a, b := mk(), mk()
	if a.Hash() != b.Hash() {
		t.Fatalf("two identical runs hash differently: %x vs %x", a.Hash(), b.Hash())
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestReportDeterministic: the rendered network section is
// byte-identical across runs — what sim-smoke diffs.
func TestReportDeterministic(t *testing.T) {
	mk := func() string {
		net := NewNetwork(mustBuild(t, "bus", 4, 0, 0), testParams)
		for k := 1; k < 4; k++ {
			net.Send(0, k, 1, 64)
			net.Recv(k, 0, 1)
		}
		return net.Finalize().Report()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty report")
	}
}
