package partition

import "fmt"

// Row is the paper's row partition method (Block, *): part k owns
// contiguous rows k*ceil(rows/p) .. and every column.
type Row struct {
	rows, cols, p int
}

// NewRow builds a row partition of a rows x cols array into p parts.
func NewRow(rows, cols, p int) (*Row, error) {
	if err := checkShape(rows, cols, p); err != nil {
		return nil, fmt.Errorf("partition: row: %w", err)
	}
	return &Row{rows: rows, cols: cols, p: p}, nil
}

// Name implements Partition.
func (r *Row) Name() string { return "row" }

// Shape implements Partition.
func (r *Row) Shape() (int, int) { return r.rows, r.cols }

// NumParts implements Partition.
func (r *Row) NumParts() int { return r.p }

// RowMap implements Partition.
func (r *Row) RowMap(k int) []int { return blockRange(r.rows, r.p, r.checkPart(k)) }

// ColMap implements Partition.
func (r *Row) ColMap(k int) []int { r.checkPart(k); return fullRange(r.cols) }

func (r *Row) checkPart(k int) int { return checkPart(k, r.p) }

// Col is the paper's column partition method (*, Block).
type Col struct {
	rows, cols, p int
}

// NewCol builds a column partition of a rows x cols array into p parts.
func NewCol(rows, cols, p int) (*Col, error) {
	if err := checkShape(rows, cols, p); err != nil {
		return nil, fmt.Errorf("partition: col: %w", err)
	}
	return &Col{rows: rows, cols: cols, p: p}, nil
}

// Name implements Partition.
func (c *Col) Name() string { return "col" }

// Shape implements Partition.
func (c *Col) Shape() (int, int) { return c.rows, c.cols }

// NumParts implements Partition.
func (c *Col) NumParts() int { return c.p }

// RowMap implements Partition.
func (c *Col) RowMap(k int) []int { c.checkPart(k); return fullRange(c.rows) }

// ColMap implements Partition.
func (c *Col) ColMap(k int) []int { return blockRange(c.cols, c.p, c.checkPart(k)) }

func (c *Col) checkPart(k int) int { return checkPart(k, c.p) }

// Mesh is the paper's 2D mesh partition method (Block, Block): a pr x pc
// processor grid where processor P_{i,j} (part index i*pc + j) owns
// contiguous row block i crossed with contiguous column block j.
type Mesh struct {
	rows, cols, pr, pc int
}

// NewMesh builds a 2D mesh partition over a pr x pc processor grid.
func NewMesh(rows, cols, pr, pc int) (*Mesh, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("partition: mesh: negative shape %dx%d", rows, cols)
	}
	if pr <= 0 || pc <= 0 {
		return nil, fmt.Errorf("partition: mesh: grid %dx%d must be positive", pr, pc)
	}
	return &Mesh{rows: rows, cols: cols, pr: pr, pc: pc}, nil
}

// Name implements Partition.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh%dx%d", m.pr, m.pc) }

// Shape implements Partition.
func (m *Mesh) Shape() (int, int) { return m.rows, m.cols }

// NumParts implements Partition.
func (m *Mesh) NumParts() int { return m.pr * m.pc }

// Grid returns the processor grid dimensions.
func (m *Mesh) Grid() (pr, pc int) { return m.pr, m.pc }

// RowMap implements Partition.
func (m *Mesh) RowMap(k int) []int {
	return blockRange(m.rows, m.pr, checkPart(k, m.pr*m.pc)/m.pc)
}

// ColMap implements Partition.
func (m *Mesh) ColMap(k int) []int {
	return blockRange(m.cols, m.pc, checkPart(k, m.pr*m.pc)%m.pc)
}

// CyclicRow deals single rows round-robin: part k owns rows
// {k, k+p, k+2p, ...} and every column. This is the cyclic partition the
// paper's introduction mentions; index conversion needs the map form.
type CyclicRow struct {
	rows, cols, p int
}

// NewCyclicRow builds a row-cyclic partition.
func NewCyclicRow(rows, cols, p int) (*CyclicRow, error) {
	if err := checkShape(rows, cols, p); err != nil {
		return nil, fmt.Errorf("partition: cyclic-row: %w", err)
	}
	return &CyclicRow{rows: rows, cols: cols, p: p}, nil
}

// Name implements Partition.
func (c *CyclicRow) Name() string { return "cyclic-row" }

// Shape implements Partition.
func (c *CyclicRow) Shape() (int, int) { return c.rows, c.cols }

// NumParts implements Partition.
func (c *CyclicRow) NumParts() int { return c.p }

// RowMap implements Partition.
func (c *CyclicRow) RowMap(k int) []int { return strideRange(c.rows, c.p, checkPart(k, c.p)) }

// ColMap implements Partition.
func (c *CyclicRow) ColMap(k int) []int { checkPart(k, c.p); return fullRange(c.cols) }

// CyclicCol deals single columns round-robin.
type CyclicCol struct {
	rows, cols, p int
}

// NewCyclicCol builds a column-cyclic partition.
func NewCyclicCol(rows, cols, p int) (*CyclicCol, error) {
	if err := checkShape(rows, cols, p); err != nil {
		return nil, fmt.Errorf("partition: cyclic-col: %w", err)
	}
	return &CyclicCol{rows: rows, cols: cols, p: p}, nil
}

// Name implements Partition.
func (c *CyclicCol) Name() string { return "cyclic-col" }

// Shape implements Partition.
func (c *CyclicCol) Shape() (int, int) { return c.rows, c.cols }

// NumParts implements Partition.
func (c *CyclicCol) NumParts() int { return c.p }

// RowMap implements Partition.
func (c *CyclicCol) RowMap(k int) []int { checkPart(k, c.p); return fullRange(c.rows) }

// ColMap implements Partition.
func (c *CyclicCol) ColMap(k int) []int { return strideRange(c.cols, c.p, checkPart(k, c.p)) }

// BlockCyclicRow deals row blocks of the given size round-robin — the
// Block Row Scatter (BRS) distribution of Zapata et al. that the paper
// uses as its SFC baseline.
type BlockCyclicRow struct {
	rows, cols, p, block int
}

// NewBlockCyclicRow builds a block-cyclic row partition with the given
// block size.
func NewBlockCyclicRow(rows, cols, p, block int) (*BlockCyclicRow, error) {
	if err := checkShape(rows, cols, p); err != nil {
		return nil, fmt.Errorf("partition: block-cyclic-row: %w", err)
	}
	if block <= 0 {
		return nil, fmt.Errorf("partition: block-cyclic-row: block size %d must be positive", block)
	}
	return &BlockCyclicRow{rows: rows, cols: cols, p: p, block: block}, nil
}

// Name implements Partition.
func (b *BlockCyclicRow) Name() string { return fmt.Sprintf("brs-b%d", b.block) }

// Shape implements Partition.
func (b *BlockCyclicRow) Shape() (int, int) { return b.rows, b.cols }

// NumParts implements Partition.
func (b *BlockCyclicRow) NumParts() int { return b.p }

// RowMap implements Partition.
func (b *BlockCyclicRow) RowMap(k int) []int {
	return blockCyclicRange(b.rows, b.p, b.block, checkPart(k, b.p))
}

// ColMap implements Partition.
func (b *BlockCyclicRow) ColMap(k int) []int { checkPart(k, b.p); return fullRange(b.cols) }

// CyclicMesh is the two-dimensional block-cyclic distribution used by
// ScaLAPACK-style libraries: a pr x pc processor grid where processor
// P_{i,j} owns rows {i, i+pr, ...} block-cyclically with block size br
// and columns {j, j+pc, ...} with block size bc. With br = bc = 1 this
// is the pure 2-D cyclic distribution; with blocks spanning the whole
// dimension it degenerates to the mesh partition.
type CyclicMesh struct {
	rows, cols, pr, pc, br, bc int
}

// NewCyclicMesh builds a 2-D block-cyclic partition.
func NewCyclicMesh(rows, cols, pr, pc, br, bc int) (*CyclicMesh, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("partition: cyclic-mesh: negative shape %dx%d", rows, cols)
	}
	if pr <= 0 || pc <= 0 {
		return nil, fmt.Errorf("partition: cyclic-mesh: grid %dx%d must be positive", pr, pc)
	}
	if br <= 0 || bc <= 0 {
		return nil, fmt.Errorf("partition: cyclic-mesh: block %dx%d must be positive", br, bc)
	}
	return &CyclicMesh{rows: rows, cols: cols, pr: pr, pc: pc, br: br, bc: bc}, nil
}

// Name implements Partition.
func (c *CyclicMesh) Name() string {
	return fmt.Sprintf("cyclic-mesh%dx%d-b%dx%d", c.pr, c.pc, c.br, c.bc)
}

// Shape implements Partition.
func (c *CyclicMesh) Shape() (int, int) { return c.rows, c.cols }

// NumParts implements Partition.
func (c *CyclicMesh) NumParts() int { return c.pr * c.pc }

// RowMap implements Partition.
func (c *CyclicMesh) RowMap(k int) []int {
	return blockCyclicRange(c.rows, c.pr, c.br, checkPart(k, c.pr*c.pc)/c.pc)
}

// ColMap implements Partition.
func (c *CyclicMesh) ColMap(k int) []int {
	return blockCyclicRange(c.cols, c.pc, c.bc, checkPart(k, c.pr*c.pc)%c.pc)
}

func checkShape(rows, cols, p int) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("negative shape %dx%d", rows, cols)
	}
	if p <= 0 {
		return fmt.Errorf("part count %d must be positive", p)
	}
	return nil
}

func checkPart(k, p int) int {
	if k < 0 || k >= p {
		panic(fmt.Sprintf("partition: part %d out of range [0, %d)", k, p))
	}
	return k
}
