package partition

import "fmt"

// Locator answers "which part owns global cell (i, j)?" in O(parts
// sharing row i) time — the inverse of the ownership maps, needed by
// redistribution (every sender must route each of its nonzeros to its
// new owner).
type Locator struct {
	p        Partition
	rowParts [][]int  // rowParts[i] = parts owning global row i
	colOwned [][]bool // colOwned[k][j] = part k owns global column j
}

// NewLocator precomputes the inverse ownership structures.
func NewLocator(p Partition) (*Locator, error) {
	rows, cols := p.Shape()
	l := &Locator{
		p:        p,
		rowParts: make([][]int, rows),
		colOwned: make([][]bool, p.NumParts()),
	}
	for k := 0; k < p.NumParts(); k++ {
		for _, i := range p.RowMap(k) {
			if i < 0 || i >= rows {
				return nil, fmt.Errorf("partition: locator: part %d row %d out of range", k, i)
			}
			l.rowParts[i] = append(l.rowParts[i], k)
		}
		l.colOwned[k] = make([]bool, cols)
		for _, j := range p.ColMap(k) {
			if j < 0 || j >= cols {
				return nil, fmt.Errorf("partition: locator: part %d col %d out of range", k, j)
			}
			l.colOwned[k][j] = true
		}
	}
	return l, nil
}

// Owner returns the part owning global cell (i, j), or an error if no
// part covers it (an invalid partition).
func (l *Locator) Owner(i, j int) (int, error) {
	rows, cols := l.p.Shape()
	if i < 0 || i >= rows || j < 0 || j >= cols {
		return 0, fmt.Errorf("partition: locator: cell (%d, %d) out of range %dx%d", i, j, rows, cols)
	}
	for _, k := range l.rowParts[i] {
		if l.colOwned[k][j] {
			return k, nil
		}
	}
	return 0, fmt.Errorf("partition: locator: cell (%d, %d) is not covered by %s", i, j, l.p.Name())
}
