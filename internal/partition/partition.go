// Package partition implements the data partition phase of the paper:
// splitting a global two-dimensional array among p processors.
//
// Every supported partition assigns each processor a *cross product* of a
// set of global rows and a set of global columns. The paper's three
// methods are block partitions whose sets are contiguous ranges:
//
//	Row  (Block, *)     – contiguous rows x all columns
//	Col  (*, Block)     – all rows x contiguous columns
//	Mesh (Block, Block) – contiguous rows x contiguous columns
//
// The extensions (paper §1 mentions cyclic methods; the BRS scheme of
// Zapata et al. scatters block-cyclically) use strided sets. Contiguous
// sets admit the paper's subtract-an-offset index conversion (Cases
// 3.2.x/3.3.x); strided sets require a map-based conversion, which the
// compress package also provides.
package partition

import (
	"fmt"

	"repro/internal/sparse"
)

// Partition describes how a rows x cols global array is divided among
// parts. Part k owns the cross product RowMap(k) x ColMap(k) of global
// indices; both maps are sorted ascending.
type Partition interface {
	// Name identifies the method (e.g. "row", "col", "mesh2x2").
	Name() string
	// Shape returns the global array shape this partition divides.
	Shape() (rows, cols int)
	// NumParts returns the number of parts (processors).
	NumParts() int
	// RowMap returns the sorted global row indices owned by part k.
	RowMap(k int) []int
	// ColMap returns the sorted global column indices owned by part k.
	ColMap(k int) []int
}

// Contiguous reports whether a sorted index map is a contiguous range,
// in which case global-to-local conversion is the paper's single
// subtraction of the first element.
func Contiguous(m []int) bool {
	for i := 1; i < len(m); i++ {
		if m[i] != m[i-1]+1 {
			return false
		}
	}
	return true
}

// LocalShape returns the local array shape of part k.
func LocalShape(p Partition, k int) (rows, cols int) {
	return len(p.RowMap(k)), len(p.ColMap(k))
}

// Extract copies part k of the global array into a new local dense
// array. This is the data partition phase proper: the root materialises
// the local sparse array that will be sent (SFC) or compressed/encoded
// (CFS, ED).
func Extract(g *sparse.Dense, p Partition, k int) *sparse.Dense {
	rm, cm := p.RowMap(k), p.ColMap(k)
	out := sparse.NewDense(len(rm), len(cm))
	for li, gi := range rm {
		row := g.Row(gi)
		outRow := out.Row(li)
		for lj, gj := range cm {
			outRow[lj] = row[gj]
		}
	}
	return out
}

// ExtractAll returns the local dense arrays of every part.
func ExtractAll(g *sparse.Dense, p Partition) []*sparse.Dense {
	out := make([]*sparse.Dense, p.NumParts())
	for k := range out {
		out[k] = Extract(g, p, k)
	}
	return out
}

// Validate checks that the partition covers every global cell exactly
// once: maps are sorted, in range, and the parts' cross products tile
// the rows x cols grid.
func Validate(p Partition) error {
	rows, cols := p.Shape()
	if rows < 0 || cols < 0 {
		return fmt.Errorf("partition %s: negative shape %dx%d", p.Name(), rows, cols)
	}
	seen := make([]int, rows*cols)
	for k := 0; k < p.NumParts(); k++ {
		rm, cm := p.RowMap(k), p.ColMap(k)
		if err := checkSorted(rm, rows); err != nil {
			return fmt.Errorf("partition %s part %d rows: %w", p.Name(), k, err)
		}
		if err := checkSorted(cm, cols); err != nil {
			return fmt.Errorf("partition %s part %d cols: %w", p.Name(), k, err)
		}
		for _, i := range rm {
			for _, j := range cm {
				seen[i*cols+j]++
			}
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if n := seen[i*cols+j]; n != 1 {
				return fmt.Errorf("partition %s: cell (%d, %d) covered %d times", p.Name(), i, j, n)
			}
		}
	}
	return nil
}

func checkSorted(m []int, limit int) error {
	for i, v := range m {
		if v < 0 || v >= limit {
			return fmt.Errorf("index %d out of range [0, %d)", v, limit)
		}
		if i > 0 && m[i-1] >= v {
			return fmt.Errorf("map not strictly ascending at position %d", i)
		}
	}
	return nil
}

// blockRange returns the contiguous indices owned by block k of n items
// split into p blocks of ceil(n/p), the paper's partition rule: all
// blocks have ceil(n/p) items except possibly trailing ones (which may
// be short or empty).
func blockRange(n, p, k int) []int {
	size := ceilDiv(n, p)
	lo := k * size
	hi := lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// strideRange returns indices {k, k+p, k+2p, ...} below n (cyclic rule).
func strideRange(n, p, k int) []int {
	out := make([]int, 0, (n-k+p-1)/p)
	for i := k; i < n; i += p {
		out = append(out, i)
	}
	return out
}

// blockCyclicRange returns the indices owned by part k when blocks of
// size b are dealt round-robin to p parts (the BRS rule).
func blockCyclicRange(n, p, b, k int) []int {
	var out []int
	for start := k * b; start < n; start += p * b {
		for i := start; i < start+b && i < n; i++ {
			out = append(out, i)
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// fullRange returns [0, n).
func fullRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
