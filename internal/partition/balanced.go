package partition

import (
	"errors"
	"fmt"

	"repro/internal/sparse"
)

// ErrBadPartCount is returned (wrapped) when a partition is asked for a
// non-positive number of parts.
var ErrBadPartCount = errors.New("part count must be positive")

// BalancedRow is a nonuniform row partition in the spirit of the
// paper's reference [5] (Berger & Bokhari, "A Partitioning Strategy for
// Nonuniform Problems on Multiprocessors"): contiguous row blocks whose
// boundaries are chosen so every part holds roughly the same number of
// *nonzeros* rather than the same number of rows. For skewed arrays
// this drives the paper's s' (the busiest rank's ratio) toward s,
// shrinking the parallel compression/decode terms of every scheme.
//
// Because blocks stay contiguous and span all columns, the paper's
// Case 3.2.1/3.3.1 index conversions apply unchanged.
type BalancedRow struct {
	rows, cols int
	starts     []int // len p+1; part k owns rows [starts[k], starts[k+1])
}

// NewBalancedRow builds an nnz-balanced contiguous row partition of g
// into p parts using a greedy prefix-sum sweep: a boundary is placed as
// soon as the running nonzero count reaches the ideal share.
func NewBalancedRow(g *sparse.Dense, p int) (*BalancedRow, error) {
	if g == nil {
		return nil, fmt.Errorf("partition: balanced-row: nil array")
	}
	return NewBalancedRowFromCounts(sparse.RowNNZ(g), g.Cols(), p)
}

// NewBalancedRowFromCounts is NewBalancedRow from a per-row nonzero
// histogram instead of a materialized array — the form a streaming
// count pass (sparse.ScanStats) produces. The boundary sweep is shared,
// so a streamed plan lands on exactly the rows a materialized plan
// would.
//
// Degenerate histograms stay valid: an all-zero histogram falls back to
// one row per part (remainder to the last part), p > rows yields
// leading empty parts, and a single huge row simply owns its block.
// NumParts() == p always holds; p <= 0 returns an error wrapping
// ErrBadPartCount, and a negative count is rejected.
func NewBalancedRowFromCounts(rowNNZ []int, cols, p int) (*BalancedRow, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: balanced-row: part count %d: %w", p, ErrBadPartCount)
	}
	rows := len(rowNNZ)
	total := 0
	for i, n := range rowNNZ {
		if n < 0 {
			return nil, fmt.Errorf("partition: balanced-row: negative nonzero count %d at row %d", n, i)
		}
		total += n
	}

	starts := make([]int, p+1)
	r := 0
	acc := 0
	for k := 0; k < p; k++ {
		starts[k] = r
		// Ideal cumulative share after part k.
		target := float64(total) * float64(k+1) / float64(p)
		// Leave enough rows for the remaining parts to be non-empty
		// when possible, and always advance at least one row if any
		// remain.
		remainingParts := p - k - 1
		for r < rows-remainingParts {
			next := acc + rowNNZ[r]
			// Stop before overshooting the target, unless the part is
			// still empty.
			if r > starts[k] && float64(next) > target && float64(next)-target > target-float64(acc) {
				break
			}
			acc = next
			r++
			if float64(acc) >= target {
				break
			}
		}
	}
	starts[p] = rows
	return &BalancedRow{rows: rows, cols: cols, starts: starts}, nil
}

// Name implements Partition.
func (b *BalancedRow) Name() string { return "balanced-row" }

// Shape implements Partition.
func (b *BalancedRow) Shape() (int, int) { return b.rows, b.cols }

// NumParts implements Partition.
func (b *BalancedRow) NumParts() int { return len(b.starts) - 1 }

// RowMap implements Partition.
func (b *BalancedRow) RowMap(k int) []int {
	checkPart(k, b.NumParts())
	out := make([]int, 0, b.starts[k+1]-b.starts[k])
	for i := b.starts[k]; i < b.starts[k+1]; i++ {
		out = append(out, i)
	}
	return out
}

// ColMap implements Partition.
func (b *BalancedRow) ColMap(k int) []int {
	checkPart(k, b.NumParts())
	return fullRange(b.cols)
}

// Boundaries returns the row boundaries (len p+1).
func (b *BalancedRow) Boundaries() []int {
	out := make([]int, len(b.starts))
	copy(out, b.starts)
	return out
}
