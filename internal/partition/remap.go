package partition

import "fmt"

// Remap tracks which rank hosts each partition part after rank
// failures. It starts as the identity (part k lives on rank k, the
// paper's assumption) and, as ranks die, reassigns their parts — the
// partition rows/columns they owned — to the least-loaded survivors so
// a degraded distribution still covers every nonzero.
type Remap struct {
	owner []int
	dead  []bool
}

// NewRemap returns the identity mapping over p parts/ranks.
func NewRemap(p int) *Remap {
	r := &Remap{owner: make([]int, p), dead: make([]bool, p)}
	for k := range r.owner {
		r.owner[k] = k
	}
	return r
}

// Owner returns the rank currently hosting part k.
func (r *Remap) Owner(k int) int { return r.owner[k] }

// Alive reports whether rank is still a candidate host.
func (r *Remap) Alive(rank int) bool {
	return rank >= 0 && rank < len(r.dead) && !r.dead[rank]
}

// Fail marks rank dead and moves every part it hosted to surviving
// ranks, balancing by the number of parts each survivor already hosts
// (lowest rank wins ties, keeping the choice deterministic). It returns
// the ids of the parts that moved.
func (r *Remap) Fail(rank int) ([]int, error) {
	if rank < 0 || rank >= len(r.dead) {
		return nil, fmt.Errorf("partition: Remap.Fail: rank %d out of range %d", rank, len(r.dead))
	}
	if r.dead[rank] {
		return nil, nil // already processed
	}
	r.dead[rank] = true
	load := make([]int, len(r.owner))
	alive := 0
	for _, o := range r.owner {
		if !r.dead[o] {
			load[o]++
		}
	}
	for _, d := range r.dead {
		if !d {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("partition: Remap.Fail: no surviving ranks to host parts of rank %d", rank)
	}
	var moved []int
	for k, o := range r.owner {
		if o != rank {
			continue
		}
		best := -1
		for cand := range r.dead {
			if r.dead[cand] {
				continue
			}
			if best < 0 || load[cand] < load[best] {
				best = cand
			}
		}
		r.owner[k] = best
		load[best]++
		moved = append(moved, k)
	}
	return moved, nil
}

// FailTo marks rank dead and moves every part it hosted to the single
// rank `to` (which must be alive). Recovery protocols use it when only
// one rank is still safe to hand new parts — e.g. the root during the
// commit phase.
func (r *Remap) FailTo(rank, to int) ([]int, error) {
	if rank < 0 || rank >= len(r.dead) {
		return nil, fmt.Errorf("partition: Remap.FailTo: rank %d out of range %d", rank, len(r.dead))
	}
	if !r.Alive(to) || to == rank {
		return nil, fmt.Errorf("partition: Remap.FailTo: target rank %d is not a live distinct rank", to)
	}
	if r.dead[rank] {
		return nil, nil
	}
	r.dead[rank] = true
	var moved []int
	for k, o := range r.owner {
		if o == rank {
			r.owner[k] = to
			moved = append(moved, k)
		}
	}
	return moved, nil
}

// Dead returns the ranks that have failed, ascending.
func (r *Remap) Dead() []int {
	var out []int
	for rank, d := range r.dead {
		if d {
			out = append(out, rank)
		}
	}
	return out
}

// AnyDead reports whether any rank has failed.
func (r *Remap) AnyDead() bool {
	for _, d := range r.dead {
		if d {
			return true
		}
	}
	return false
}

// Moves returns the parts whose host differs from the identity, as a
// part → hosting-rank map (empty when nothing failed).
func (r *Remap) Moves() map[int]int {
	out := make(map[int]int)
	for k, o := range r.owner {
		if o != k {
			out[k] = o
		}
	}
	return out
}

// Hosted returns the parts rank currently hosts, ascending.
func (r *Remap) Hosted(rank int) []int {
	var out []int
	for k, o := range r.owner {
		if o == rank {
			out = append(out, k)
		}
	}
	return out
}
