package partition

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestBalancedRowCoverage(t *testing.T) {
	f := func(seed int64) bool {
		g := sparse.Uniform(23, 11, 0.3, seed)
		for _, p := range []int{1, 2, 4, 7} {
			b, err := NewBalancedRow(g, p)
			if err != nil || Validate(b) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBalancedRowBeatsUniformOnSkew(t *testing.T) {
	// Heavily skewed array: the first quarter of the rows holds almost
	// all nonzeros. The balanced partition must cut max-part nnz
	// substantially relative to the uniform row partition.
	g := sparse.NewDense(64, 64)
	for i := 0; i < 16; i++ {
		for j := 0; j < 64; j++ {
			g.Set(i, j, 1)
		}
	}
	for i := 16; i < 64; i += 8 {
		g.Set(i, 0, 1) // a sprinkle elsewhere
	}
	uniform, _ := NewRow(64, 64, 4)
	balanced, err := NewBalancedRow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	bu := BalanceOf(g, uniform)
	bb := BalanceOf(g, balanced)
	if bb.Max >= bu.Max {
		t.Errorf("balanced max %d not below uniform max %d", bb.Max, bu.Max)
	}
	if bb.Imbalance > 2 {
		t.Errorf("balanced imbalance %g still above 2", bb.Imbalance)
	}
}

func TestBalancedRowContiguity(t *testing.T) {
	g := sparse.Uniform(40, 20, 0.2, 3)
	b, err := NewBalancedRow(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	bounds := b.Boundaries()
	if bounds[0] != 0 || bounds[5] != 40 {
		t.Errorf("boundaries = %v", bounds)
	}
	for k := 0; k < 5; k++ {
		rm := b.RowMap(k)
		if !Contiguous(rm) {
			t.Errorf("part %d rows not contiguous", k)
		}
		if len(rm) > 0 && rm[0] != bounds[k] {
			t.Errorf("part %d starts at %d, want %d", k, rm[0], bounds[k])
		}
		if len(b.ColMap(k)) != 20 {
			t.Errorf("part %d does not span all columns", k)
		}
	}
}

func TestBalancedRowEdgeCases(t *testing.T) {
	if _, err := NewBalancedRow(nil, 2); err == nil {
		t.Error("nil array accepted")
	}
	g := sparse.Uniform(4, 4, 0.5, 1)
	if _, err := NewBalancedRow(g, 0); err == nil {
		t.Error("zero parts accepted")
	}
	// More parts than rows: must still cover exactly once.
	b, err := NewBalancedRow(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatal(err)
	}
	// Empty array.
	b, err = NewBalancedRow(sparse.NewDense(6, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatal(err)
	}
	if b.Name() != "balanced-row" {
		t.Error("name wrong")
	}
}

func TestBalancedRowFromCountsDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		rowNNZ  []int
		cols, p int
		wantErr error // nil means a valid partition is required
	}{
		{name: "all-zero histogram", rowNNZ: []int{0, 0, 0, 0, 0, 0}, cols: 9, p: 3},
		{name: "all-zero more parts than rows", rowNNZ: []int{0, 0, 0}, cols: 9, p: 7},
		{name: "parts exceed rows", rowNNZ: []int{5, 1, 2}, cols: 4, p: 8},
		{name: "single huge row", rowNNZ: []int{0, 0, 1000, 0}, cols: 1000, p: 4},
		{name: "huge first row", rowNNZ: []int{1 << 20, 0, 0, 0, 0}, cols: 1 << 20, p: 4},
		{name: "empty histogram", rowNNZ: nil, cols: 5, p: 3},
		{name: "one row many parts", rowNNZ: []int{42}, cols: 7, p: 5},
		{name: "zero parts", rowNNZ: []int{1, 2}, cols: 3, p: 0, wantErr: ErrBadPartCount},
		{name: "negative parts", rowNNZ: []int{1, 2}, cols: 3, p: -4, wantErr: ErrBadPartCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := NewBalancedRowFromCounts(tc.rowNNZ, tc.cols, tc.p)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := b.NumParts(); got != tc.p {
				t.Fatalf("NumParts() = %d, want %d", got, tc.p)
			}
			if err := Validate(b); err != nil {
				t.Fatalf("invalid partition: %v", err)
			}
			bounds := b.Boundaries()
			if bounds[0] != 0 || bounds[tc.p] != len(tc.rowNNZ) {
				t.Fatalf("boundaries %v do not span [0, %d]", bounds, len(tc.rowNNZ))
			}
			for k := 0; k < tc.p; k++ {
				if bounds[k] > bounds[k+1] {
					t.Fatalf("boundaries %v not monotonic at part %d", bounds, k)
				}
			}
		})
	}

	if _, err := NewBalancedRowFromCounts([]int{3, -1, 2}, 4, 2); err == nil {
		t.Error("negative nonzero count accepted")
	}
}
