package partition

import (
	"fmt"
	"strings"
)

// Parse builds a partition from an HPF-style distribution descriptor,
// the notation the paper borrows from Fortran 90/HPF ("(Block,*)",
// "(*,Block)", "(Block,Block)"):
//
//	(Block,*)        row partition
//	(*,Block)        column partition
//	(Block,Block)    2-D mesh on the most square pr x pc grid
//	(Cyclic,*)       row-cyclic
//	(*,Cyclic)       column-cyclic
//	(Cyclic(b),*)    block-cyclic rows with block size b (BRS)
//	(Cyclic,Cyclic)  2-D cyclic on the most square grid
//
// Descriptors are case-insensitive and whitespace-tolerant.
func Parse(desc string, rows, cols, p int) (Partition, error) {
	s := strings.ToLower(strings.ReplaceAll(desc, " ", ""))
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("partition: descriptor %q: want two comma-separated axes", desc)
	}
	rowAxis, colAxis := parts[0], parts[1]

	kind := func(axis string) (string, int, error) {
		switch {
		case axis == "*":
			return "*", 0, nil
		case axis == "block":
			return "block", 0, nil
		case axis == "cyclic":
			return "cyclic", 1, nil
		case strings.HasPrefix(axis, "cyclic(") && strings.HasSuffix(axis, ")"):
			var b int
			if _, err := fmt.Sscanf(axis, "cyclic(%d)", &b); err != nil || b <= 0 {
				return "", 0, fmt.Errorf("partition: bad cyclic block in %q", axis)
			}
			return "cyclic", b, nil
		default:
			return "", 0, fmt.Errorf("partition: unknown axis spec %q", axis)
		}
	}
	rk, rb, err := kind(rowAxis)
	if err != nil {
		return nil, err
	}
	ck, cb, err := kind(colAxis)
	if err != nil {
		return nil, err
	}

	switch {
	case rk == "block" && ck == "*":
		return NewRow(rows, cols, p)
	case rk == "*" && ck == "block":
		return NewCol(rows, cols, p)
	case rk == "block" && ck == "block":
		pr, pc := mostSquare(p)
		return NewMesh(rows, cols, pr, pc)
	case rk == "cyclic" && ck == "*":
		if rb == 1 {
			return NewCyclicRow(rows, cols, p)
		}
		return NewBlockCyclicRow(rows, cols, p, rb)
	case rk == "*" && ck == "cyclic":
		if cb == 1 {
			return NewCyclicCol(rows, cols, p)
		}
		return nil, fmt.Errorf("partition: block-cyclic columns not supported in descriptor %q", desc)
	case rk == "cyclic" && ck == "cyclic":
		pr, pc := mostSquare(p)
		return NewCyclicMesh(rows, cols, pr, pc, rb, cb)
	case rk == "*" && ck == "*":
		return nil, fmt.Errorf("partition: descriptor %q distributes nothing", desc)
	default:
		return nil, fmt.Errorf("partition: unsupported combination in %q", desc)
	}
}

func mostSquare(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best, p / best
}
