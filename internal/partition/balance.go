package partition

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Balance summarises how evenly a partition spreads the nonzeros — the
// quantity behind the paper's s' parameter (the busiest rank's sparse
// ratio drives the parallel compression/decode terms of the analysis).
type Balance struct {
	PerPart  []int   // nonzeros per part
	Min, Max int     // extreme counts
	Mean     float64 // average count
	StdDev   float64
	// Imbalance is Max/Mean (1.0 = perfect); 0 for an empty array.
	Imbalance float64
}

// BalanceOf computes the nonzero balance of g under p.
func BalanceOf(g *sparse.Dense, p Partition) Balance {
	counts := make([]int, p.NumParts())
	total := 0
	for k := range counts {
		counts[k] = Extract(g, p, k).NNZ()
		total += counts[k]
	}
	b := Balance{PerPart: counts}
	if len(counts) == 0 {
		return b
	}
	b.Min, b.Max = counts[0], counts[0]
	for _, c := range counts {
		if c < b.Min {
			b.Min = c
		}
		if c > b.Max {
			b.Max = c
		}
	}
	b.Mean = float64(total) / float64(len(counts))
	var ss float64
	for _, c := range counts {
		d := float64(c) - b.Mean
		ss += d * d
	}
	b.StdDev = math.Sqrt(ss / float64(len(counts)))
	if b.Mean > 0 {
		b.Imbalance = float64(b.Max) / b.Mean
	}
	return b
}

// String renders a one-line summary.
func (b Balance) String() string {
	return fmt.Sprintf("nnz/part min %d max %d mean %.1f stddev %.1f imbalance %.3f",
		b.Min, b.Max, b.Mean, b.StdDev, b.Imbalance)
}
