package partition

import (
	"reflect"
	"testing"
)

func TestRemapIdentity(t *testing.T) {
	r := NewRemap(4)
	for k := 0; k < 4; k++ {
		if r.Owner(k) != k {
			t.Errorf("Owner(%d) = %d, want identity", k, r.Owner(k))
		}
		if !r.Alive(k) {
			t.Errorf("rank %d not alive initially", k)
		}
	}
	if r.AnyDead() {
		t.Error("AnyDead on fresh remap")
	}
	if len(r.Moves()) != 0 {
		t.Errorf("Moves = %v, want empty", r.Moves())
	}
}

func TestRemapFailMovesToLeastLoaded(t *testing.T) {
	r := NewRemap(4)
	moved, err := r.Fail(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moved, []int{2}) {
		t.Errorf("moved = %v, want [2]", moved)
	}
	// All survivors host one part; lowest rank wins the tie.
	if r.Owner(2) != 0 {
		t.Errorf("part 2 moved to %d, want 0 (lowest-rank tiebreak)", r.Owner(2))
	}
	if r.Alive(2) {
		t.Error("rank 2 still alive after Fail")
	}
	if !reflect.DeepEqual(r.Dead(), []int{2}) {
		t.Errorf("Dead = %v, want [2]", r.Dead())
	}

	// Second failure: rank 0 already hosts two parts (0 and 2), so rank
	// 1's part must land on the lighter rank 3.
	moved, err = r.Fail(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moved, []int{1}) {
		t.Errorf("moved = %v, want [1]", moved)
	}
	if r.Owner(1) != 3 {
		t.Errorf("part 1 moved to %d, want 3 (least loaded)", r.Owner(1))
	}
	if !reflect.DeepEqual(r.Moves(), map[int]int{1: 3, 2: 0}) {
		t.Errorf("Moves = %v", r.Moves())
	}
	if !reflect.DeepEqual(r.Hosted(0), []int{0, 2}) || !reflect.DeepEqual(r.Hosted(3), []int{1, 3}) {
		t.Errorf("Hosted(0)=%v Hosted(3)=%v", r.Hosted(0), r.Hosted(3))
	}
}

func TestRemapFailIdempotentAndExhaustion(t *testing.T) {
	r := NewRemap(2)
	if _, err := r.Fail(1); err != nil {
		t.Fatal(err)
	}
	moved, err := r.Fail(1)
	if err != nil || moved != nil {
		t.Errorf("second Fail(1) = %v, %v; want nil, nil", moved, err)
	}
	if _, err := r.Fail(0); err == nil {
		t.Error("killing the last survivor must fail")
	}
	if _, err := r.Fail(7); err == nil {
		t.Error("out-of-range rank must fail")
	}
}

func TestRemapFailTo(t *testing.T) {
	r := NewRemap(3)
	moved, err := r.FailTo(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moved, []int{2}) {
		t.Errorf("moved = %v, want [2]", moved)
	}
	if r.Owner(2) != 0 {
		t.Errorf("part 2 forced to %d, want 0", r.Owner(2))
	}
	// Target must be a live distinct rank.
	if _, err := r.FailTo(1, 2); err == nil {
		t.Error("FailTo onto a dead rank accepted")
	}
	if _, err := r.FailTo(1, 1); err == nil {
		t.Error("FailTo onto itself accepted")
	}
	// Idempotent on an already-dead rank.
	if moved, err := r.FailTo(2, 0); err != nil || moved != nil {
		t.Errorf("repeat FailTo = %v, %v; want nil, nil", moved, err)
	}
}
