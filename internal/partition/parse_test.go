package partition

import "testing"

func TestParseDescriptors(t *testing.T) {
	cases := []struct {
		desc string
		name string
	}{
		{"(Block,*)", "row"},
		{"( block , * )", "row"},
		{"(*,Block)", "col"},
		{"(Block,Block)", "mesh2x2"},
		{"(Cyclic,*)", "cyclic-row"},
		{"(*,Cyclic)", "cyclic-col"},
		{"(Cyclic(3),*)", "brs-b3"},
		{"(Cyclic,Cyclic)", "cyclic-mesh2x2-b1x1"},
		{"(Cyclic(2),Cyclic(3))", "cyclic-mesh2x2-b2x3"},
	}
	for _, c := range cases {
		p, err := Parse(c.desc, 12, 12, 4)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.desc, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.desc, p.Name(), c.name)
		}
		if err := Validate(p); err != nil {
			t.Errorf("Parse(%q) invalid: %v", c.desc, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "(Block)", "(*,*)", "(Frob,*)", "(Cyclic(0),*)",
		"(Cyclic(x),*)", "(*,Cyclic(4))", "Block,Block,Block",
	} {
		if _, err := Parse(bad, 8, 8, 2); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseMatchesDirectConstructors(t *testing.T) {
	a, err := Parse("(Block,Block)", 10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewMesh(10, 8, 2, 2)
	for k := 0; k < 4; k++ {
		am, bm := a.RowMap(k), b.RowMap(k)
		if len(am) != len(bm) {
			t.Fatalf("part %d row counts differ", k)
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("part %d row %d differs", k, i)
			}
		}
	}
}
