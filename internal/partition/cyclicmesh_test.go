package partition

import (
	"testing"

	"repro/internal/sparse"
)

func TestCyclicMeshCoverage(t *testing.T) {
	for _, c := range []struct{ rows, cols, pr, pc, br, bc int }{
		{12, 12, 2, 2, 1, 1},
		{13, 9, 2, 3, 2, 2},
		{7, 5, 3, 2, 2, 1},
		{16, 16, 4, 2, 3, 5},
	} {
		p, err := NewCyclicMesh(c.rows, c.cols, c.pr, c.pc, c.br, c.bc)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(p); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestCyclicMeshPureCyclic(t *testing.T) {
	// br = bc = 1 over a 2x2 grid: part 3 = P_{1,1} owns odd rows and
	// odd columns.
	p, err := NewCyclicMesh(6, 6, 2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{1, 3, 5}
	got := p.RowMap(3)
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	for i := range wantRows {
		if got[i] != wantRows[i] {
			t.Errorf("RowMap(3)[%d] = %d, want %d", i, got[i], wantRows[i])
		}
	}
	cols := p.ColMap(3)
	for i := range wantRows {
		if cols[i] != wantRows[i] {
			t.Errorf("ColMap(3)[%d] = %d, want %d", i, cols[i], wantRows[i])
		}
	}
}

func TestCyclicMeshDegeneratesToMesh(t *testing.T) {
	// Block size covering each dimension block exactly reproduces the
	// mesh partition's maps.
	cm, err := NewCyclicMesh(12, 8, 2, 2, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(12, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		a, b := cm.RowMap(k), mesh.RowMap(k)
		if len(a) != len(b) {
			t.Fatalf("part %d row counts differ: %d vs %d", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("part %d row %d: %d vs %d", k, i, a[i], b[i])
			}
		}
	}
}

func TestCyclicMeshErrors(t *testing.T) {
	if _, err := NewCyclicMesh(-1, 2, 1, 1, 1, 1); err == nil {
		t.Error("negative shape accepted")
	}
	if _, err := NewCyclicMesh(2, 2, 0, 1, 1, 1); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := NewCyclicMesh(2, 2, 1, 1, 0, 1); err == nil {
		t.Error("zero block accepted")
	}
}

func TestCyclicMeshLocatorAndExtract(t *testing.T) {
	g := sparse.Uniform(14, 10, 0.3, 4)
	p, err := NewCyclicMesh(14, 10, 2, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble from extracted locals through the locator.
	locals := ExtractAll(g, p)
	total := 0
	for k, l := range locals {
		total += l.NNZ()
		for li, gi := range p.RowMap(k) {
			for lj, gj := range p.ColMap(k) {
				owner, err := loc.Owner(gi, gj)
				if err != nil || owner != k {
					t.Fatalf("Owner(%d, %d) = %d, %v; want %d", gi, gj, owner, err, k)
				}
				if l.At(li, lj) != g.At(gi, gj) {
					t.Fatalf("extract mismatch at (%d, %d)", gi, gj)
				}
			}
		}
	}
	if total != g.NNZ() {
		t.Errorf("locals hold %d nonzeros, global has %d", total, g.NNZ())
	}
}
