package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestRowPartitionFigure2(t *testing.T) {
	// Figure 2: the 10x8 array of Figure 1 split into 4 row blocks of
	// ceil(10/4) = 3 rows; P3 gets the single remaining row.
	p, err := NewRow(10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	wantRows := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9}}
	for k, want := range wantRows {
		got := p.RowMap(k)
		if len(got) != len(want) {
			t.Fatalf("part %d owns %d rows, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("part %d row %d = %d, want %d", k, i, got[i], want[i])
			}
		}
		if len(p.ColMap(k)) != 8 {
			t.Errorf("part %d owns %d cols, want all 8", k, len(p.ColMap(k)))
		}
	}
}

func TestRowPartitionLocalNNZFigure3(t *testing.T) {
	// Figure 3: local arrays received per processor have 4, 3, 6, 3
	// nonzeros respectively.
	g := sparse.PaperFigure1()
	p, _ := NewRow(10, 8, 4)
	locals := ExtractAll(g, p)
	want := []int{4, 3, 6, 3}
	for k, w := range want {
		if got := locals[k].NNZ(); got != w {
			t.Errorf("P%d local NNZ = %d, want %d", k, got, w)
		}
	}
}

func TestColPartition(t *testing.T) {
	p, err := NewCol(10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if nr, nc := LocalShape(p, k); nr != 10 || nc != 2 {
			t.Errorf("part %d shape %dx%d, want 10x2", k, nr, nc)
		}
		if !Contiguous(p.ColMap(k)) {
			t.Errorf("part %d col map not contiguous", k)
		}
	}
	if p.ColMap(1)[0] != 2 {
		t.Errorf("part 1 first column = %d, want 2", p.ColMap(1)[0])
	}
}

func TestMeshPartition(t *testing.T) {
	p, err := NewMesh(10, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", p.NumParts())
	}
	// Part 3 = P_{1,1}: rows 5-9, cols 4-7.
	if rm := p.RowMap(3); rm[0] != 5 || len(rm) != 5 {
		t.Errorf("part 3 rows start %d len %d, want 5, 5", rm[0], len(rm))
	}
	if cm := p.ColMap(3); cm[0] != 4 || len(cm) != 4 {
		t.Errorf("part 3 cols start %d len %d, want 4, 4", cm[0], len(cm))
	}
	if pr, pc := p.Grid(); pr != 2 || pc != 2 {
		t.Errorf("Grid = %dx%d, want 2x2", pr, pc)
	}
}

func TestMeshNameAndRowName(t *testing.T) {
	m, _ := NewMesh(4, 4, 2, 3)
	if m.Name() != "mesh2x3" {
		t.Errorf("mesh name = %q", m.Name())
	}
	r, _ := NewRow(4, 4, 2)
	if r.Name() != "row" {
		t.Errorf("row name = %q", r.Name())
	}
}

func TestCyclicRowPartition(t *testing.T) {
	p, err := NewCyclicRow(10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 7}
	got := p.RowMap(1)
	if len(got) != 3 {
		t.Fatalf("part 1 owns %d rows, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part 1 row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if Contiguous(got) {
		t.Error("cyclic row map reported contiguous")
	}
}

func TestCyclicColPartition(t *testing.T) {
	p, err := NewCyclicCol(4, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := p.ColMap(2); got[0] != 2 || got[1] != 6 {
		t.Errorf("part 2 cols = %v, want [2 6]", got)
	}
}

func TestBlockCyclicRowPartition(t *testing.T) {
	p, err := NewBlockCyclicRow(12, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	// Blocks of 3 rows dealt to 2 parts: part 0 gets rows 0-2 and 6-8.
	want := []int{0, 1, 2, 6, 7, 8}
	got := p.RowMap(0)
	if len(got) != len(want) {
		t.Fatalf("part 0 owns %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part 0 row %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestValidateAllMethodsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rows := int(seed%17) + 1
		cols := int(seed%13) + 1
		p := int(seed%5) + 1
		parts := []Partition{}
		if r, err := NewRow(rows, cols, p); err == nil {
			parts = append(parts, r)
		}
		if c, err := NewCol(rows, cols, p); err == nil {
			parts = append(parts, c)
		}
		if m, err := NewMesh(rows, cols, p, 2); err == nil {
			parts = append(parts, m)
		}
		if cr, err := NewCyclicRow(rows, cols, p); err == nil {
			parts = append(parts, cr)
		}
		if cc, err := NewCyclicCol(rows, cols, p); err == nil {
			parts = append(parts, cc)
		}
		if b, err := NewBlockCyclicRow(rows, cols, p, 2); err == nil {
			parts = append(parts, b)
		}
		for _, pt := range parts {
			if Validate(pt) != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestExtractMatchesSubMatrix(t *testing.T) {
	g := sparse.PaperFigure1()
	p, _ := NewMesh(10, 8, 2, 2)
	got := Extract(g, p, 3)
	want := g.SubMatrix(5, 4, 5, 4)
	if !got.Equal(want) {
		t.Error("Extract of mesh part 3 disagrees with SubMatrix")
	}
}

func TestExtractCyclicReassembly(t *testing.T) {
	// Extract all cyclic parts and scatter them back; must reproduce g.
	g := sparse.Uniform(11, 7, 0.4, 2)
	p, _ := NewCyclicRow(11, 7, 3)
	locals := ExtractAll(g, p)
	re := sparse.NewDense(11, 7)
	for k, l := range locals {
		for li, gi := range p.RowMap(k) {
			for lj, gj := range p.ColMap(k) {
				re.Set(gi, gj, l.At(li, lj))
			}
		}
	}
	if !re.Equal(g) {
		t.Error("cyclic extract/reassemble lost data")
	}
}

func TestPartCountExceedingDims(t *testing.T) {
	// More parts than rows: trailing parts own nothing, coverage holds.
	p, err := NewRow(3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	empty := 0
	for k := 0; k < 8; k++ {
		if len(p.RowMap(k)) == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Error("expected some empty parts with p > rows")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewRow(-1, 4, 2); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := NewRow(4, 4, 0); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := NewMesh(4, 4, 0, 2); err == nil {
		t.Error("zero mesh dim accepted")
	}
	if _, err := NewBlockCyclicRow(4, 4, 2, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewCyclicRow(4, 4, -1); err == nil {
		t.Error("negative parts accepted")
	}
	if _, err := NewCyclicCol(4, 4, 0); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := NewCol(2, -2, 1); err == nil {
		t.Error("negative cols accepted")
	}
}

func TestPartOutOfRangePanics(t *testing.T) {
	p, _ := NewRow(4, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("RowMap(5) did not panic")
		}
	}()
	p.RowMap(5)
}

func TestContiguous(t *testing.T) {
	if !Contiguous([]int{3, 4, 5}) {
		t.Error("contiguous range reported non-contiguous")
	}
	if Contiguous([]int{1, 3}) {
		t.Error("gap reported contiguous")
	}
	if !Contiguous(nil) || !Contiguous([]int{7}) {
		t.Error("empty/singleton must be contiguous")
	}
}

func TestLocalStatsSPrime(t *testing.T) {
	// s' (largest local ratio) >= s (global ratio) for any partition.
	g := sparse.Uniform(40, 40, 0.1, 9)
	p, _ := NewRow(40, 40, 4)
	st := sparse.LocalStats(ExtractAll(g, p))
	if st.MaxRatio < st.GlobalRatio {
		t.Errorf("s' = %g < s = %g", st.MaxRatio, st.GlobalRatio)
	}
	if st.GlobalNNZ != g.NNZ() {
		t.Errorf("partition changed total NNZ: %d vs %d", st.GlobalNNZ, g.NNZ())
	}
}
