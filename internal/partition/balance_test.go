package partition

import (
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestBalanceOfUniform(t *testing.T) {
	g := sparse.UniformExact(64, 64, 0.1, 3)
	p, _ := NewRow(64, 64, 4)
	b := BalanceOf(g, p)
	total := 0
	for _, c := range b.PerPart {
		total += c
	}
	if total != g.NNZ() {
		t.Errorf("per-part counts sum to %d, want %d", total, g.NNZ())
	}
	if b.Min > b.Max {
		t.Error("min > max")
	}
	if b.Imbalance < 1 {
		t.Errorf("imbalance = %g < 1", b.Imbalance)
	}
	if b.Mean != float64(g.NNZ())/4 {
		t.Errorf("mean = %g", b.Mean)
	}
	if !strings.Contains(b.String(), "imbalance") {
		t.Error("String missing fields")
	}
}

func TestBalanceSkewedArray(t *testing.T) {
	// All nonzeros in the first row block: row partition maximally
	// imbalanced, cyclic-row partition perfectly balanced.
	g := sparse.NewDense(16, 16)
	for j := 0; j < 16; j++ {
		for i := 0; i < 4; i++ {
			g.Set(i, j, 1)
		}
	}
	row, _ := NewRow(16, 16, 4)
	cyc, _ := NewCyclicRow(16, 16, 4)
	bRow := BalanceOf(g, row)
	bCyc := BalanceOf(g, cyc)
	if bRow.Imbalance != 4 {
		t.Errorf("row imbalance = %g, want 4 (all nnz in one part)", bRow.Imbalance)
	}
	if bCyc.Imbalance != 1 || bCyc.StdDev != 0 {
		t.Errorf("cyclic imbalance = %g stddev %g, want 1, 0", bCyc.Imbalance, bCyc.StdDev)
	}
}

func TestBalanceEmpty(t *testing.T) {
	g := sparse.NewDense(4, 4)
	p, _ := NewRow(4, 4, 2)
	b := BalanceOf(g, p)
	if b.Imbalance != 0 || b.Max != 0 {
		t.Errorf("empty array balance = %+v", b)
	}
}
