package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/sparse"
)

// FuzzDiffDistribute is the end-to-end differential fuzz target: the
// fuzzer's bytes become a small dense array and an axis selector, the
// array is distributed with the invariant checker on the hot path, and
// the differential oracle proves the result exact. Whatever shape or
// pattern the fuzzer invents, a distribution must either fail cleanly
// at Distribute or reassemble to exactly the input — anything else
// (panic, violation, mismatch) is a bug. Seeds come from the
// adversarial generator's corner corpus.
func FuzzDiffDistribute(f *testing.F) {
	for i, c := range check.Adversarial(1, 1) {
		if i >= 24 { // the corner product; the random tail adds nothing here
			break
		}
		f.Add(patternBytes(c.G), int16(c.G.Rows()), int16(c.G.Cols()), uint8(c.Procs), uint8(i))
	}

	schemes := []string{"SFC", "CFS", "ED"}
	methods := []string{"CRS", "CCS", "JDS"}
	partitions := []string{"row", "col", "mesh", "cyclic-row"}
	f.Fuzz(func(t *testing.T, raw []byte, r16, c16 int16, procs8, axis8 uint8) {
		rows, cols := int(r16)%24, int(c16)%24
		if rows < 0 {
			rows = -rows
		}
		if cols < 0 {
			cols = -cols
		}
		g := sparse.NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if k := i*cols + j; k < len(raw) && raw[k] != 0 {
					g.Set(i, j, float64(raw[k]))
				}
			}
		}
		axis := int(axis8)
		d, err := Distribute(g, Config{
			Scheme:    schemes[axis%len(schemes)],
			Method:    methods[(axis/3)%len(methods)],
			Partition: partitions[(axis/9)%len(partitions)],
			Procs:     1 + int(procs8)%7,
			Check:     true,
		})
		if err != nil {
			t.Fatalf("distribute: %v", err) // no config above is invalid
		}
		defer d.Close()
		if err := d.DiffCheck(); err != nil {
			t.Fatalf("oracle: %v", err)
		}
	})
}

// patternBytes flattens an array's nonzero pattern into the fuzz
// target's byte encoding (zero byte = empty cell).
func patternBytes(g *sparse.Dense) []byte {
	out := make([]byte, g.Rows()*g.Cols())
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if g.At(i, j) != 0 {
				out[i*g.Cols()+j] = byte(1 + (i+j)%250)
			}
		}
	}
	return out
}
