package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestAutoResolveDeterministic(t *testing.T) {
	g := sparse.Uniform(80, 80, 0.08, 5)
	cfg := Config{Scheme: "auto", Procs: 4}
	first, firstChoice, err := ResolveAuto(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, choice, err := ResolveAuto(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("run %d: resolved config %+v != first %+v", i, got, first)
		}
		if choice.Scheme != firstChoice.Scheme || choice.Partition != firstChoice.Partition ||
			choice.Method != firstChoice.Method || choice.Workers != firstChoice.Workers ||
			choice.Predicted != firstChoice.Predicted {
			t.Fatalf("run %d: choice %+v != first %+v", i, choice, firstChoice)
		}
	}
}

func TestDistributeAuto(t *testing.T) {
	g := sparse.Uniform(60, 60, 0.1, 3)
	d, err := Distribute(g, Config{Scheme: "auto", Procs: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Auto == nil {
		t.Fatal("Distribution.Auto not populated for scheme auto")
	}
	switch d.Auto.Scheme {
	case "SFC", "CFS", "ED":
	default:
		t.Errorf("auto resolved to unknown scheme %q", d.Auto.Scheme)
	}
	if d.Result.Scheme != d.Auto.Scheme {
		t.Errorf("ran scheme %s but choice says %s", d.Result.Scheme, d.Auto.Scheme)
	}
	if d.Result.Partition != d.Auto.Partition {
		t.Errorf("ran partition %s but choice says %s", d.Result.Partition, d.Auto.Partition)
	}
	if d.Auto.Predicted.Total() <= 0 {
		t.Error("auto choice carries no prediction")
	}
	if len(d.Auto.Ranked) == 0 {
		t.Error("auto choice carries no ranking")
	}
	// Auto runs are full citizens of the correctness machinery.
	if err := d.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if err := d.DiffCheck(); err != nil {
		t.Errorf("DiffCheck: %v", err)
	}
}

func TestDistributeAutoCaseInsensitive(t *testing.T) {
	g := sparse.Uniform(30, 30, 0.1, 1)
	for _, name := range []string{"AUTO", "Auto"} {
		d, err := Distribute(g, Config{Scheme: name, Procs: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Auto == nil {
			t.Errorf("%s: Auto not populated", name)
		}
		d.Close()
	}
}

func TestDistributeAutoPinsExplicitFields(t *testing.T) {
	g := sparse.Uniform(60, 60, 0.1, 3)
	d, err := Distribute(g, Config{Scheme: "auto", Partition: "col", Method: "CCS", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Auto.Partition != "col" || d.Result.Partition != "col" {
		t.Errorf("pinned partition col not honored: choice %s, ran %s", d.Auto.Partition, d.Result.Partition)
	}
	if d.Auto.Method != "CCS" || d.Result.Method.String() != "CCS" {
		t.Errorf("pinned method CCS not honored: choice %s, ran %s", d.Auto.Method, d.Result.Method)
	}
	// JDS has no model form; it must still run (modelled as CRS).
	dj, err := Distribute(g, Config{Scheme: "auto", Method: "JDS", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer dj.Close()
	if dj.Result.Method.String() != "JDS" {
		t.Errorf("pinned JDS ran as %s", dj.Result.Method)
	}
}

func TestDistributeAutoEmptyArray(t *testing.T) {
	// Degenerate input takes the deterministic default plan, not an error.
	d, err := Distribute(sparse.NewDense(5, 5), Config{Scheme: "auto", Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Auto.Scheme != "ED" {
		t.Errorf("degenerate auto scheme = %s, want ED", d.Auto.Scheme)
	}
	if err := d.DiffCheck(); err != nil {
		t.Error(err)
	}
}

func TestDistributeAutoTopology(t *testing.T) {
	// A bandwidth-starved star must steer auto away from the wire-heavy
	// SFC in the regime where the flat model picks it (EXPERIMENTS.md).
	g := sparse.UniformExact(400, 400, 0.1, 1)
	flat, err := Distribute(g, Config{Scheme: "auto", Partition: "row", Method: "CRS", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if flat.Auto.Scheme != "SFC" {
		t.Fatalf("flat auto = %s, want SFC in this regime", flat.Auto.Scheme)
	}
	starved, err := Distribute(g, Config{
		Scheme: "auto", Partition: "row", Method: "CRS", Procs: 4,
		Topology: "star", LinkBW: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer starved.Close()
	if starved.Auto.Scheme == "SFC" {
		t.Error("starved star still picked SFC")
	}
}

func TestDistributeStreamRejectsAuto(t *testing.T) {
	src := sparse.NewUniformStream(40, 40, 80, 1, sparse.DefaultChunkEntries)
	_, err := DistributeStream(src, Config{Scheme: "auto", Procs: 2})
	if !errors.Is(err, ErrAutoStream) {
		t.Fatalf("err = %v, want ErrAutoStream", err)
	}
}

func TestDistributeAllAuto(t *testing.T) {
	g := sparse.Uniform(50, 50, 0.1, 2)
	b, err := DistributeAll(g, []Config{
		{Scheme: "auto", Procs: 4},
		{Scheme: "ED", Procs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Distributions[0].Auto == nil {
		t.Error("auto config's Distribution.Auto not populated")
	}
	if b.Distributions[1].Auto != nil {
		t.Error("explicit config grew an Auto record")
	}
	for i, d := range b.Distributions {
		if err := d.DiffCheck(); err != nil {
			t.Errorf("distribution %d: %v", i, err)
		}
	}
}

// TestDiffSweepAuto is the acceptance gate: the auto column of the
// differential sweep, over adversarial inputs (including the degenerate
// balanced-row seeds), with the degraded engine path, must be
// violation-free. CI runs it under -race.
func TestDiffSweepAuto(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 12
	}
	res := DiffSweep(SweepConfig{
		Cases:    cases,
		Schemes:  []string{"auto"},
		Degraded: true,
	})
	for _, f := range res.Failures {
		t.Errorf("%s", f)
	}
	if res.Runs == 0 {
		t.Fatal("sweep ran nothing")
	}
}

func TestAutoReportLine(t *testing.T) {
	g := sparse.Uniform(40, 40, 0.1, 1)
	d, err := Distribute(g, Config{Scheme: "auto", Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rep := d.Report()
	if !strings.Contains(rep, "auto-selected:") {
		t.Errorf("report has no auto-selected line:\n%s", rep)
	}
}
