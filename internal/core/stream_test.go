package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sparse"
)

// TestDistributeStreamMatchesDistribute: the one-call streaming API
// must produce the same local arrays and virtual counters as the
// materializing one-call API, including for the balanced partition
// whose streamed plan comes from a counting pass.
func TestDistributeStreamMatchesDistribute(t *testing.T) {
	g := sparse.Uniform(40, 40, 0.2, 17)
	coo := sparse.FromDense(g)
	for _, part := range []string{"row", "balanced-row"} {
		for _, scheme := range []string{"SFC", "CFS", "ED"} {
			t.Run(scheme+"/"+part, func(t *testing.T) {
				cfg := Config{Scheme: scheme, Partition: part, Procs: 4, Method: "CRS"}
				want, err := Distribute(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer want.Close()

				cfg.FlushEntries = 16
				cfg.MemBudget = 4096
				d, err := DistributeStream(sparse.NewStreamCOO(coo, 37), cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				if !d.Streamed {
					t.Error("Streamed flag not set")
				}
				if d.Global != nil {
					t.Error("streamed distribution retained a global array")
				}
				if err := d.VerifyAgainst(g); err != nil {
					t.Errorf("verify: %v", err)
				}
				if err := d.DiffCheckAgainst(g); err != nil {
					t.Errorf("diff check: %v", err)
				}
				if d.Partition.Name() != want.Partition.Name() {
					t.Errorf("partition %s, want %s", d.Partition.Name(), want.Partition.Name())
				}
				wb, gb := want.Result.Breakdown, d.Result.Breakdown
				if wb.RootDist != gb.RootDist || wb.RootComp != gb.RootComp {
					t.Errorf("root counters differ: dist %v vs %v, comp %v vs %v",
						wb.RootDist, gb.RootDist, wb.RootComp, gb.RootComp)
				}
				if got := d.Report(); got == "" {
					t.Error("empty report for streamed run")
				}
			})
		}
	}
}

// TestDistributeStreamFromFile: end-to-end out-of-core path — write a
// Matrix Market file, stream it through OpenStream with a budget far
// smaller than the array, and diff the reassembly against a separate
// whole-file read.
func TestDistributeStreamFromFile(t *testing.T) {
	g := sparse.Uniform(50, 30, 0.15, 23)
	coo := sparse.FromDense(g)
	var buf bytes.Buffer
	if err := sparse.WriteText(&buf, coo); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.mtx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, closer, err := sparse.OpenStream(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	d, err := DistributeStream(src, Config{Scheme: "ED", Partition: "balanced-row", Procs: 4, Method: "CCS", MemBudget: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.DiffCheckAgainst(g); err != nil {
		t.Errorf("diff check: %v", err)
	}
	if err := d.Verify(); err == nil {
		t.Error("Verify on a streamed distribution should direct callers to VerifyAgainst")
	}
	if err := d.DiffCheck(); err == nil {
		t.Error("DiffCheck on a streamed distribution should direct callers to DiffCheckAgainst")
	}
}
