package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/costmodel"
	"repro/internal/simnet"
	"repro/internal/sparse"
)

// scheme=auto: Config.Scheme "auto" asks the cost model to pick the
// plan. Distribute measures the array's statistics, runs
// costmodel.Select over every candidate the config leaves free, and
// runs the winner through the exact same engine path as an explicit
// config — auto never bypasses the differential harness, validators or
// reassembly oracle, so a misprediction can only cost time, never
// correctness. Fields the caller sets explicitly (Partition, Method,
// Workers, mesh grid) are pinned; Select only ranks what is left free.

// ErrAutoStream is returned when scheme=auto is combined with the
// streaming path: selection needs the full nonzero histograms, which a
// bounded-memory stream never materializes.
var ErrAutoStream = errors.New(`core: scheme "auto" is not supported on the streaming path (selection needs full array statistics); pick a scheme explicitly`)

// IsAutoScheme reports whether the scheme name requests cost-model
// plan selection.
func IsAutoScheme(scheme string) bool { return strings.EqualFold(scheme, "auto") }

// AutoChoice records what the cost model picked for a scheme=auto run
// and what it predicted for the winner.
type AutoChoice struct {
	Scheme    string // resolved scheme: "SFC", "CFS" or "ED"
	Partition string // resolved partition name
	Method    string // resolved method name
	Workers   int    // suggested root encode workers (0 = engine default)
	Predicted costmodel.Estimate
	// Ranked is the full candidate ranking behind the decision, in the
	// model's fixed enumeration order.
	Ranked []costmodel.Candidate
}

// AutoSelectOptions derives the cost-model selection options from a
// config: everything the caller set explicitly becomes a pin, and a
// configured topology makes selection contention-aware.
func AutoSelectOptions(cfg Config) (costmodel.SelectOptions, error) {
	procs := cfg.Procs
	if procs <= 0 {
		procs = 4
	}
	if (cfg.Partition == "mesh" || cfg.Partition == "cyclic-mesh") &&
		cfg.MeshRows > 0 && cfg.MeshCols > 0 {
		procs = cfg.MeshRows * cfg.MeshCols
	}
	opts := costmodel.SelectOptions{
		Procs:    procs,
		MeshRows: cfg.MeshRows,
		MeshCols: cfg.MeshCols,
		Params:   cfg.Params,
	}
	if cfg.Partition != "" {
		kind := costmodel.KindFor(cfg.Partition)
		opts.Kind = &kind
	}
	if cfg.Method != "" {
		method := costmodel.MethodFor(cfg.Method)
		opts.Method = &method
	}
	if cfg.Topology != "" {
		params := cfg.Params
		if params == (cost.Params{}) {
			params = cost.DefaultParams
		}
		top, err := simnet.Build(cfg.Topology, procs, params, cfg.LinkBW, cfg.LinkLatency)
		if err != nil {
			return costmodel.SelectOptions{}, fmt.Errorf("core: auto selection: %w", err)
		}
		opts.Topology = top
	}
	return opts, nil
}

// ResolveAutoStats resolves a scheme=auto config against already
// measured statistics, applying the optional adjust hook (a serving
// layer's online refiner). The returned config is concrete — Scheme,
// Partition and Method all set — and ready for withDefaults.
func ResolveAutoStats(st costmodel.ArrayStats, cfg Config, adjust func(string, costmodel.Estimate) costmodel.Estimate) (Config, *AutoChoice, error) {
	opts, err := AutoSelectOptions(cfg)
	if err != nil {
		return Config{}, nil, err
	}
	opts.Adjust = adjust
	choice, err := costmodel.Select(st, opts)
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: auto selection: %w", err)
	}
	auto := &AutoChoice{
		Scheme:    choice.Scheme,
		Partition: cfg.Partition,
		Method:    cfg.Method,
		Workers:   cfg.Workers,
		Predicted: choice.Predicted,
		Ranked:    choice.Ranked,
	}
	if auto.Partition == "" {
		auto.Partition = choice.Kind.String() // "row", "col" or "mesh"
	}
	if auto.Method == "" {
		auto.Method = choice.Method.String() // "CRS" or "CCS"
	}
	if auto.Workers == 0 {
		auto.Workers = choice.Workers
	}
	out := cfg
	out.Scheme = auto.Scheme
	out.Partition = auto.Partition
	out.Method = auto.Method
	out.Workers = auto.Workers
	return out, auto, nil
}

// ResolveAuto measures g and resolves a scheme=auto config to the
// model-predicted best concrete config.
func ResolveAuto(g *sparse.Dense, cfg Config) (Config, *AutoChoice, error) {
	return ResolveAutoStats(costmodel.MeasureStats(g), cfg, nil)
}
