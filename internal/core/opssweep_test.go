package core

import (
	"testing"
)

// reportOpsSweep fails the test with every sweep failure (capped).
func reportOpsSweep(t *testing.T, name string, res *OpsSweepResult) {
	t.Helper()
	t.Logf("%s: %d runs, %d failures", name, res.Runs, len(res.Failures))
	for i, f := range res.Failures {
		if i >= 20 {
			t.Errorf("... and %d more failures", len(res.Failures)-20)
			return
		}
		t.Errorf("%s", f)
	}
}

// TestOpsSweep is the compute-layer differential harness: halo SpMV,
// Jacobi and row-fetch SpGEMM under the full scheme x partition x
// method matrix, each diffed against its sequential oracle. Short mode
// trims the method axis.
func TestOpsSweep(t *testing.T) {
	sc := OpsSweepConfig{}
	if testing.Short() {
		sc.Methods = []string{"CRS"}
	}
	reportOpsSweep(t, "ops sweep", OpsSweep(sc))
}

// TestOpsSweepKilled re-runs the matrix with a crashed rank: the
// communication plan must route around the dead rank and the
// survivors' answers must still match the oracle. The kill path pays
// real retry latency, so the matrix is trimmed to one method.
func TestOpsSweepKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("kill sweep pays real retry latency")
	}
	reportOpsSweep(t, "ops sweep (killed)", OpsSweep(OpsSweepConfig{
		Methods: []string{"CRS"},
		Kill:    true,
	}))
}

// TestDistributionOpsConvenience exercises the Distribution-level
// wrappers end to end on one distribution: the plan is built once and
// shared across SpMV, Jacobi, Power and SpGEMM calls.
func TestDistributionOpsConvenience(t *testing.T) {
	g := opsSweepInput("jacobi", 7)
	d, err := Distribute(g, Config{Scheme: "ED", Partition: "row", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	pl1, err := d.CommPlan()
	if err != nil {
		t.Fatal(err)
	}
	pl2, _ := d.CommPlan()
	if pl1 != pl2 {
		t.Fatal("CommPlan rebuilt instead of cached")
	}

	x := make([]float64, g.Cols())
	for i := range x {
		x[i] = 1
	}
	y, st, err := d.HaloSpMV(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := vecsClose("spmv", y, denseMatVec(g, x), 1e-9); err != nil {
		t.Fatal(err)
	}
	if st.WireWords <= 0 || st.Messages <= 0 {
		t.Fatalf("halo SpMV reported no traffic: %+v", st)
	}

	b := denseMatVec(g, x)
	sol, jst, err := d.Jacobi(b, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !jst.Converged {
		t.Fatalf("jacobi did not converge in %d iterations", jst.Iterations)
	}
	if err := vecsClose("jacobi", denseMatVec(g, sol), b, 1e-8); err != nil {
		t.Fatal(err)
	}

	lam, vec, _, err := d.PowerIteration(1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// The eigenpair oracle: A·v must equal lambda·v.
	av := denseMatVec(g, vec)
	for i := range av {
		av[i] -= lam * vec[i]
	}
	if err := vecsClose("power residual", av, make([]float64, len(av)), 1e-6); err != nil {
		t.Fatal(err)
	}
}
