package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sparse"
)

// ExampleDistribute distributes the paper's worked-example array over
// four processors with the ED scheme and reports each rank's compressed
// piece — the numbers of Figure 3.
func ExampleDistribute() {
	g := sparse.PaperFigure1() // 10x8, 16 nonzeros
	d, err := core.Distribute(g, core.Config{Scheme: "ED", Partition: "row", Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	for rank, local := range d.Result.LocalCRS {
		fmt.Printf("P%d: %dx%d, %d nonzeros\n", rank, local.Rows, local.Cols, local.NNZ())
	}
	// Output:
	// P0: 3x8, 4 nonzeros
	// P1: 3x8, 3 nonzeros
	// P2: 3x8, 6 nonzeros
	// P3: 1x8, 3 nonzeros
}
