package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compress"
	"repro/internal/ops"
	"repro/internal/sparse"
)

// The ops differential sweep: the distributed compute layer (halo
// SpMV, Jacobi, row-fetch SpGEMM) is run under every scheme x
// partition x method combination and each result is diffed against the
// sequential oracle — a dense mat-vec, the residual of the linear
// system, or the sequential Gustavson SpGEMM. One failing combination
// is one OpsSweepFailure; the sweep never stops early.

// OpsSweepConfig selects the axes of an OpsSweep. The zero value
// sweeps SFC/CFS/ED over row/col/mesh/cyclic-row with CRS/CCS/JDS for
// all three ops on the direct engine path.
type OpsSweepConfig struct {
	// Seed drives the input generators (default 1).
	Seed int64
	// Schemes, Partitions and Methods default to SFC/CFS/ED,
	// row/col/mesh/cyclic-row and CRS/CCS/JDS.
	Schemes    []string
	Partitions []string
	Methods    []string
	// Ops defaults to spmv, jacobi and spgemm.
	Ops []string
	// Kill additionally runs every combination with one rank crashed
	// before distribution: the plan must exclude the dead rank and the
	// survivors' answers must still match the oracle exactly.
	Kill bool
	// Progress, when non-nil, is called after every completed run.
	Progress func(done, total int)
}

func (sc OpsSweepConfig) withDefaults() OpsSweepConfig {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if len(sc.Schemes) == 0 {
		sc.Schemes = []string{"SFC", "CFS", "ED"}
	}
	if len(sc.Partitions) == 0 {
		sc.Partitions = []string{"row", "col", "mesh", "cyclic-row"}
	}
	if len(sc.Methods) == 0 {
		sc.Methods = []string{"CRS", "CCS", "JDS"}
	}
	if len(sc.Ops) == 0 {
		sc.Ops = []string{"spmv", "jacobi", "spgemm"}
	}
	return sc
}

// OpsSweepFailure is one failing combination of an OpsSweep.
type OpsSweepFailure struct {
	Op        string
	Scheme    string
	Partition string
	Method    string
	// Mode is "direct" or "killed" (one rank crashed, parts re-homed).
	Mode string
	Err  error
}

// String renders the failing combination with its error.
func (f OpsSweepFailure) String() string {
	return fmt.Sprintf("%s: %s/%s/%s/%s: %v", f.Op, f.Scheme, f.Partition, f.Method, f.Mode, f.Err)
}

// OpsSweepResult is the outcome of an OpsSweep.
type OpsSweepResult struct {
	// Runs is the number of distribute-compute-verify runs executed.
	Runs int
	// Failures lists every combination whose op disagreed with its
	// sequential oracle.
	Failures []OpsSweepFailure
}

// OpsSweep runs every configured op across the scheme x partition x
// method matrix and verifies each answer against the sequential
// oracle. It collects failures instead of stopping at the first: a
// kernel bug that breaks one combination is reported alongside every
// other combination it breaks.
func OpsSweep(sc OpsSweepConfig) *OpsSweepResult {
	sc = sc.withDefaults()
	modes := []string{"direct"}
	if sc.Kill {
		modes = append(modes, "killed")
	}
	total := len(sc.Ops) * len(sc.Schemes) * len(sc.Partitions) * len(sc.Methods) * len(modes)
	res := &OpsSweepResult{}
	for _, op := range sc.Ops {
		for _, scheme := range sc.Schemes {
			for _, part := range sc.Partitions {
				for _, method := range sc.Methods {
					for _, mode := range modes {
						err := opsSweepOne(op, scheme, part, method, mode, sc.Seed)
						res.Runs++
						if err != nil {
							res.Failures = append(res.Failures, OpsSweepFailure{
								Op: op, Scheme: scheme, Partition: part,
								Method: method, Mode: mode, Err: err,
							})
						}
						if sc.Progress != nil {
							sc.Progress(res.Runs, total)
						}
					}
				}
			}
		}
	}
	return res
}

// opsSweepOne distributes the op's input matrix under one combination,
// runs the distributed op and checks it against the sequential oracle.
func opsSweepOne(op, scheme, part, method, mode string, seed int64) error {
	cfg := Config{Scheme: scheme, Partition: part, Method: method, Procs: 4, Check: true}
	if mode == "killed" {
		cfg.Degrade = true
		cfg.KillRank = 2
		cfg.Retries = 2
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	g := opsSweepInput(op, seed)
	d, err := Distribute(g, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	if mode == "killed" && !d.Result.Degraded {
		return fmt.Errorf("core: killed rank %d but result not degraded", cfg.KillRank)
	}
	switch op {
	case "spmv":
		return opsSweepSpMV(d, g, seed)
	case "jacobi":
		return opsSweepJacobi(d, g)
	case "spgemm":
		return opsSweepSpGEMM(d, g, seed)
	default:
		return fmt.Errorf("core: unknown op %q (want spmv, jacobi or spgemm)", op)
	}
}

// opsSweepInput builds the op's deterministic test matrix: a
// rectangular uniform array for spmv/spgemm, a strictly diagonally
// dominant square one for jacobi.
func opsSweepInput(op string, seed int64) *sparse.Dense {
	switch op {
	case "jacobi":
		return diagDominant(sparse.Uniform(40, 40, 0.12, seed))
	case "spgemm":
		return sparse.Uniform(30, 24, 0.15, seed)
	default:
		return sparse.Uniform(37, 29, 0.15, seed)
	}
}

// diagDominant forces strict diagonal dominance in place so Jacobi is
// guaranteed to converge, and returns the array.
func diagDominant(g *sparse.Dense) *sparse.Dense {
	for i := 0; i < g.Rows(); i++ {
		sum := 0.0
		for j := 0; j < g.Cols(); j++ {
			if j != i {
				sum += math.Abs(g.At(i, j))
			}
		}
		g.Set(i, i, sum+1)
	}
	return g
}

func opsSweepSpMV(d *Distribution, g *sparse.Dense, seed int64) error {
	x := make([]float64, g.Cols())
	for i := range x {
		x[i] = float64((int64(i)*2654435761 + seed) % 17)
	}
	got, st, err := d.HaloSpMV(x)
	if err != nil {
		return err
	}
	if st.WireWords <= 0 {
		return fmt.Errorf("core: spmv moved no wire words")
	}
	want := denseMatVec(g, x)
	return vecsClose("spmv", got, want, 1e-9)
}

func opsSweepJacobi(d *Distribution, g *sparse.Dense) error {
	b := make([]float64, g.Rows())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, st, err := d.Jacobi(b, 1e-12, 500)
	if err != nil {
		return err
	}
	if !st.Converged {
		return fmt.Errorf("core: jacobi did not converge in %d iterations", st.Iterations)
	}
	// The oracle is the residual: A·x must reproduce b.
	return vecsClose("jacobi residual", denseMatVec(g, x), b, 1e-8)
}

func opsSweepSpGEMM(d *Distribution, g *sparse.Dense, seed int64) error {
	bDense := sparse.Uniform(g.Cols(), 18, 0.2, seed+1)
	b := compress.CompressCRS(bDense, nil)
	got, _, err := d.SpGEMM(b)
	if err != nil {
		return err
	}
	want, err := ops.SpGEMM(compress.CompressCRS(g, nil), b)
	if err != nil {
		return err
	}
	return crsClose("spgemm", got, want, 1e-9)
}

// denseMatVec is the sequential oracle y = G·x.
func denseMatVec(g *sparse.Dense, x []float64) []float64 {
	y := make([]float64, g.Rows())
	for i := 0; i < g.Rows(); i++ {
		s := 0.0
		for j := 0; j < g.Cols(); j++ {
			s += g.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

func vecsClose(what string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("core: %s length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			return fmt.Errorf("core: %s[%d] = %g, want %g", what, i, got[i], want[i])
		}
	}
	return nil
}

// crsClose diffs two CRS matrices element-wise through densification,
// so structurally different but numerically equal results (explicit
// zeros, ordering) still pass.
func crsClose(what string, got, want *compress.CRS, tol float64) error {
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("core: %s shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	return vecsClose(what, densifyCRS(got), densifyCRS(want), tol)
}

func densifyCRS(c *compress.CRS) []float64 {
	out := make([]float64, c.Rows*c.Cols)
	for i := 0; i < c.Rows; i++ {
		for t := c.RowPtr[i]; t < c.RowPtr[i+1]; t++ {
			out[i*c.Cols+c.ColIdx[t]] += c.Val[t]
		}
	}
	return out
}
