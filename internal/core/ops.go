package core

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/spops"
)

// Distributed compute on a finished distribution. These wrap the spops
// halo-exchange engine: the first op builds a CommPlan from the local
// compressed arrays' column support, and every later op on the same
// distribution reuses it, so an iterative solver pays the plan cost
// once and O(halo) traffic per iteration instead of a root broadcast.

// CommPlan returns the halo-exchange communication plan for this
// distribution, building it on first use. The plan is pure index
// structure (no machine state), so it is also safe to cache externally
// and execute on a different pooled machine with the same processor
// count.
func (d *Distribution) CommPlan() (*spops.CommPlan, error) {
	d.commOnce.Do(func() {
		d.commPlan, d.commErr = spops.BuildCommPlan(d.Partition, d.Result)
	})
	return d.commPlan, d.commErr
}

// HaloSpMV computes y = A·x with point-to-point halo exchange instead
// of the broadcast kernel behind SpMV, and reports the wire traffic it
// moved. On a degraded distribution the surviving ranks compute over
// the re-homed parts.
func (d *Distribution) HaloSpMV(x []float64) ([]float64, spops.OpStats, error) {
	pl, err := d.CommPlan()
	if err != nil {
		return nil, spops.OpStats{}, err
	}
	return spops.SpMV(d.m, pl, x)
}

// Jacobi solves A·x = b by Jacobi iteration over the distributed array
// (A must be square with a zero-free diagonal; convergence needs it
// diagonally dominant). Each iteration is one halo exchange plus one
// scalar allreduce.
func (d *Distribution) Jacobi(b []float64, tol float64, maxIter int) ([]float64, spops.OpStats, error) {
	pl, err := d.CommPlan()
	if err != nil {
		return nil, spops.OpStats{}, err
	}
	return spops.Jacobi(d.m, pl, b, nil, tol, maxIter)
}

// PowerIteration estimates the dominant eigenvalue and eigenvector of
// the distributed square array by power iteration over the halo plan.
func (d *Distribution) PowerIteration(tol float64, maxIter int) (float64, []float64, spops.OpStats, error) {
	pl, err := d.CommPlan()
	if err != nil {
		return 0, nil, spops.OpStats{}, err
	}
	return spops.Power(d.m, pl, tol, maxIter)
}

// SpGEMM computes C = A·B where A is the distributed array and B a
// compressed global operand: each rank fetches only the B-rows its
// local A-part references (Gustavson's algorithm locally).
func (d *Distribution) SpGEMM(b *compress.CRS) (*compress.CRS, spops.OpStats, error) {
	pl, err := d.CommPlan()
	if err != nil {
		return nil, spops.OpStats{}, err
	}
	return spops.DistSpGEMM(d.m, pl, b)
}

// OpStatsString renders op statistics for reports and logs.
func OpStatsString(st spops.OpStats) string {
	return fmt.Sprintf("%s: %d msgs, %d wire words (halo %d vs broadcast %d), %d flops, %d iterations",
		st.Op, st.Messages, st.WireWords, st.HaloWords, st.BcastWords, st.Ops, st.Iterations)
}
