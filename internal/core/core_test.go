package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sparse"
)

func TestDistributeDefaults(t *testing.T) {
	g := sparse.Uniform(32, 32, 0.1, 1)
	d, err := Distribute(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Result.Scheme != "ED" || d.Result.Partition != "row" {
		t.Errorf("defaults = %s/%s, want ED/row", d.Result.Scheme, d.Result.Partition)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.DistributionTime() <= 0 || d.CompressionTime() <= 0 {
		t.Error("virtual times not populated")
	}
}

func TestDistributeAllConfigCombos(t *testing.T) {
	g := sparse.Uniform(24, 24, 0.15, 2)
	for _, scheme := range []string{"SFC", "CFS", "ED"} {
		for _, part := range []string{"row", "col", "mesh", "cyclic-row", "cyclic-col", "brs", "cyclic-mesh"} {
			for _, method := range []string{"CRS", "CCS"} {
				d, err := Distribute(g, Config{Scheme: scheme, Partition: part, Method: method, Procs: 4, BlockSize: 2})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", scheme, part, method, err)
				}
				if err := d.Verify(); err != nil {
					t.Fatalf("%s/%s/%s: %v", scheme, part, method, err)
				}
				d.Close()
			}
		}
	}
}

func TestDistributeModelTransport(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.2, 9)
	d, err := Distribute(g, Config{Transport: "model", Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	// Wall distribution must now be at least the modelled wire time of
	// the root's sends.
	bd := d.Result.Breakdown
	wire := d.Params.TStartup*2 + time.Duration(bd.RootDist.Elements)*d.Params.TData
	if bd.WallDistribution() < wire {
		t.Errorf("wall dist %v below modelled wire %v", bd.WallDistribution(), wire)
	}
}

func TestDistributeTCP(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.2, 3)
	d, err := Distribute(g, Config{Transport: "tcp", Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeSpMV(t *testing.T) {
	g := sparse.Uniform(20, 20, 0.25, 4)
	d, err := Distribute(g, Config{Partition: "mesh", MeshRows: 2, MeshCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := make([]float64, 20)
	for i := range x {
		x[i] = float64(i)
	}
	y, err := d.SpMV(x)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference.
	for i := 0; i < 20; i++ {
		want := 0.0
		for j := 0; j < 20; j++ {
			want += g.At(i, j) * x[j]
		}
		if diff := y[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestDistributeCG(t *testing.T) {
	g := sparse.Poisson2D(5).ToDense() // 25x25 SPD
	d, err := Distribute(g, Config{Procs: 5, Scheme: "CFS"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	b := make([]float64, 25)
	b[12] = 1
	sol, err := d.CG(b, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatalf("CG residual %g after %d iterations", sol.Residual, sol.Iterations)
	}
}

func TestConfigErrors(t *testing.T) {
	g := sparse.Uniform(8, 8, 0.2, 5)
	cases := []Config{
		{Scheme: "NOPE"},
		{Partition: "diagonal"},
		{Method: "LZ77"},
		{Transport: "carrier-pigeon"},
	}
	for _, cfg := range cases {
		if _, err := Distribute(g, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSquareGrid(t *testing.T) {
	cases := map[int][2]int{4: {2, 2}, 6: {2, 3}, 16: {4, 4}, 7: {1, 7}, 36: {6, 6}}
	for p, want := range cases {
		pr, pc := squareGrid(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("squareGrid(%d) = %dx%d, want %dx%d", p, pr, pc, want[0], want[1])
		}
	}
}

func TestReportContents(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.1, 6)
	d, err := Distribute(g, Config{Scheme: "ED", Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rep := d.Report()
	for _, want := range []string{"scheme ED", "T_Distribution", "T_Compression", "messages"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDistributeJDSMethod(t *testing.T) {
	g := sparse.Uniform(24, 24, 0.2, 12)
	d, err := Distribute(g, Config{Method: "JDS", Scheme: "CFS", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(d.Result.LocalJDS) != 4 {
		t.Fatalf("LocalJDS has %d entries", len(d.Result.LocalJDS))
	}
	// SpMV works straight off the JDS locals.
	x := make([]float64, 24)
	for i := range x {
		x[i] = float64(i)
	}
	y, err := d.SpMV(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		want := 0.0
		for j := 0; j < 24; j++ {
			want += g.At(i, j) * x[j]
		}
		if diff := y[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestDistributeHPFDescriptor(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.2, 10)
	d, err := Distribute(g, Config{Partition: "(Block,Block)", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Result.Partition != "mesh2x2" {
		t.Errorf("descriptor produced %q, want mesh2x2", d.Result.Partition)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := Distribute(g, Config{Partition: "(*,*)"}); err == nil {
		t.Error("degenerate descriptor accepted")
	}
}

func TestDistributeBalancedRow(t *testing.T) {
	g := sparse.BlockClustered(32, 32, 5, 6, 0.9, 11)
	d, err := Distribute(g, Config{Partition: "balanced-row", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Result.Partition != "balanced-row" {
		t.Errorf("partition = %q", d.Result.Partition)
	}
}

func TestMeshDefaultsToSquareGrid(t *testing.T) {
	g := sparse.Uniform(12, 12, 0.2, 7)
	d, err := Distribute(g, Config{Partition: "mesh", Procs: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Partition.NumParts() != 6 {
		t.Errorf("parts = %d, want 6", d.Partition.NumParts())
	}
	if d.Result.Partition != "mesh2x3" {
		t.Errorf("partition name = %q, want mesh2x3", d.Result.Partition)
	}
}

func TestDistributeRecoversFromInjectedFaults(t *testing.T) {
	g := sparse.Uniform(32, 32, 0.15, 3)
	d, err := Distribute(g, Config{
		Scheme:       "ED",
		Procs:        4,
		Retries:      6,
		RetryBackoff: 2 * time.Millisecond,
		FaultDrops:   3,
		FaultCorrupt: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Result.Degraded {
		t.Error("transient faults flagged Degraded")
	}
	st, ok := d.ReliableStats()
	if !ok {
		t.Fatal("reliability stats missing despite Retries > 0")
	}
	if st.Retransmits < 3 {
		t.Errorf("retransmits = %d, want >= 3", st.Retransmits)
	}
	if fs, ok := d.FaultStats(); !ok || fs.Dropped != 3 {
		t.Errorf("fault stats = %+v ok=%v, want 3 drops consumed", fs, ok)
	}
	if !strings.Contains(d.Report(), "reliability:") {
		t.Error("report missing reliability line")
	}
}

func TestDistributeDegradesAroundKilledRank(t *testing.T) {
	g := sparse.Uniform(32, 32, 0.15, 4)
	d, err := Distribute(g, Config{
		Scheme:       "CFS",
		Procs:        4,
		Degrade:      true,
		RetryBackoff: time.Millisecond,
		KillRank:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !d.Result.Degraded {
		t.Fatal("result not flagged Degraded")
	}
	if len(d.Result.DeadRanks) != 1 || d.Result.DeadRanks[0] != 2 {
		t.Errorf("DeadRanks = %v, want [2]", d.Result.DeadRanks)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("degraded result does not cover all nonzeros: %v", err)
	}
	if !strings.Contains(d.Report(), "DEGRADED") {
		t.Error("report missing DEGRADED line")
	}
}

func TestDistributeRejectsKillWithoutDegrade(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.2, 5)
	if _, err := Distribute(g, Config{Procs: 4, KillRank: 2}); err == nil {
		t.Fatal("KillRank without Degrade accepted")
	}
	if _, err := Distribute(g, Config{Procs: 4, Degrade: true, KillRank: 9}); err == nil {
		t.Fatal("out-of-range KillRank accepted")
	}
}
