package core

import (
	"testing"

	"repro/internal/check"
)

// reportSweep fails the test with the first few sweep failures.
func reportSweep(t *testing.T, name string, res *SweepResult) {
	t.Helper()
	t.Logf("%s: %d cases, %d runs, %d failures", name, res.Cases, res.Runs, len(res.Failures))
	for i, f := range res.Failures {
		if i >= 20 {
			t.Errorf("... and %d more failures", len(res.Failures)-20)
			return
		}
		t.Errorf("%s", f)
	}
}

// TestDiffSweep is the differential correctness harness: >= 200
// adversarial arrays through the full scheme x partition x method
// matrix, direct and (healthy) degraded engine paths, invariant checks
// on the hot path and the oracle on every result. Short mode trims the
// case count; `make check-diff` runs the full sweep.
func TestDiffSweep(t *testing.T) {
	sc := SweepConfig{Degraded: true}
	if testing.Short() {
		sc.Cases = 60
	}
	reportSweep(t, "diff sweep", DiffSweep(sc))
}

// TestDiffSweepMorePartitions covers the partition kinds outside the
// default matrix: block-cyclic, cyclic column/mesh, the nnz-balanced
// row partition, and HPF-style descriptors.
func TestDiffSweepMorePartitions(t *testing.T) {
	reportSweep(t, "partitions sweep", DiffSweep(SweepConfig{
		Cases:      60,
		Partitions: []string{"brs", "cyclic-col", "cyclic-mesh", "balanced-row", "(Block,Block)", "(Cyclic(2),*)"},
		Degraded:   true,
	}))
}

// TestDiffSweepKilled proves distributions stay exact when a rank
// actually dies and its parts are re-homed onto survivors. Kill runs
// pay real retry latency, so the axes are trimmed.
func TestDiffSweepKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("kill runs pay real retry latency")
	}
	reportSweep(t, "kill sweep", DiffSweep(SweepConfig{
		Cases:      10, // the generator still emits its full corner corpus
		Partitions: []string{"row"},
		Methods:    []string{"CRS", "JDS"},
		Kill:       true,
	}))
}

// TestDiffSweepTCP pushes the corner corpus over real localhost
// sockets — zero-length payloads and tiny frames exercise the framing
// path the in-process transport never strains.
func TestDiffSweepTCP(t *testing.T) {
	reportSweep(t, "tcp sweep", DiffSweep(SweepConfig{
		Cases:      10,
		Partitions: []string{"row"},
		Transports: []string{"tcp"},
	}))
}

// TestDiffSweepSequentialRoot drives the corner cases through the
// strictly sequential root loop (Workers=1), a distinct pipeline path.
func TestDiffSweepSequentialRoot(t *testing.T) {
	for _, c := range check.Adversarial(1, 1) {
		for _, scheme := range []string{"SFC", "CFS", "ED"} {
			d, err := Distribute(c.G, Config{
				Scheme: scheme, Partition: "row", Procs: c.Procs,
				Workers: 1, Check: true,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", c.Name, scheme, err)
				continue
			}
			if err := d.DiffCheck(); err != nil {
				t.Errorf("%s/%s: %v", c.Name, scheme, err)
			}
			d.Close()
		}
	}
}
