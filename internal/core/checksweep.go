package core

import (
	"fmt"
	"time"

	"repro/internal/check"
)

// The differential sweep: every adversarial input from the check
// package's generator is distributed under every scheme x partition x
// method combination (optionally also through the degradable engine
// path and over several transports), with the invariant checker on the
// hot path and the differential oracle on the result. One failing
// combination is one SweepFailure — the harness reports them all
// instead of stopping at the first.

// SweepConfig selects the axes of a DiffSweep. The zero value sweeps
// the full default matrix: 200 adversarial cases, all three schemes,
// the four structurally distinct partitions, all three methods, the
// chan transport, direct engine path only.
type SweepConfig struct {
	// Cases is the adversarial case count (default 200).
	Cases int
	// Seed drives the adversarial generator (default 1).
	Seed int64
	// Schemes, Partitions, Methods and Transports default to
	// SFC/CFS/ED plus "auto" (the cost model resolves the scheme per
	// case, with partition and method pinned by the sweep axes),
	// row/col/mesh/cyclic-row, CRS/CCS/JDS and chan.
	Schemes    []string
	Partitions []string
	Methods    []string
	Transports []string
	// Degraded additionally runs every combination through the
	// degradable engine path (retained payloads, per-part tags,
	// assignment commits) with all ranks healthy — the protocol detour
	// has to be exact too, not just survive.
	Degraded bool
	// Kill additionally runs every multi-rank combination with the last
	// rank crashed before distribution, so its parts are re-homed onto
	// survivors; the oracle then proves the re-homed distribution is
	// still exact. Kill runs pay real retry latency (a fast retry policy
	// keeps it small) — budget roughly 10ms per combination.
	Kill bool
	// Progress, when non-nil, is called after every completed run.
	Progress func(done, total int)
}

func (sc SweepConfig) withDefaults() SweepConfig {
	if sc.Cases == 0 {
		sc.Cases = 200
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if len(sc.Schemes) == 0 {
		sc.Schemes = []string{"SFC", "CFS", "ED", "auto"}
	}
	if len(sc.Partitions) == 0 {
		sc.Partitions = []string{"row", "col", "mesh", "cyclic-row"}
	}
	if len(sc.Methods) == 0 {
		sc.Methods = []string{"CRS", "CCS", "JDS"}
	}
	if len(sc.Transports) == 0 {
		sc.Transports = []string{"chan"}
	}
	return sc
}

// SweepFailure is one failing combination of a DiffSweep.
type SweepFailure struct {
	Case      string
	Scheme    string
	Partition string
	Method    string
	Transport string
	// Mode is the engine path: "direct", "degraded" (healthy degradable
	// protocol) or "killed" (one rank crashed, parts re-homed).
	Mode string
	Err  error
}

// String renders the failing combination with its error.
func (f SweepFailure) String() string {
	return fmt.Sprintf("%s: %s/%s/%s/%s/%s: %v", f.Case, f.Scheme, f.Partition, f.Method, f.Transport, f.Mode, f.Err)
}

// SweepResult is the outcome of a DiffSweep.
type SweepResult struct {
	// Runs is the number of distributions executed.
	Runs int
	// Cases is the number of adversarial inputs swept.
	Cases int
	// Failures lists every combination whose run, invariant check or
	// differential oracle failed.
	Failures []SweepFailure
}

// DiffSweep distributes every adversarial case across the configured
// matrix with Check on, runs the differential oracle on each result,
// and collects the failures. It never stops early: a bug that breaks
// one combination is reported alongside every other combination it
// breaks, which is what localises it.
func DiffSweep(sc SweepConfig) *SweepResult {
	sc = sc.withDefaults()
	cases := check.Adversarial(sc.Cases, sc.Seed)
	modes := []string{"direct"}
	if sc.Degraded {
		modes = append(modes, "degraded")
	}
	if sc.Kill {
		modes = append(modes, "killed")
	}
	total := len(cases) * len(sc.Schemes) * len(sc.Partitions) * len(sc.Methods) * len(sc.Transports) * len(modes)
	res := &SweepResult{Cases: len(cases)}
	for _, c := range cases {
		for _, transport := range sc.Transports {
			for _, scheme := range sc.Schemes {
				for _, part := range sc.Partitions {
					for _, method := range sc.Methods {
						for _, mode := range modes {
							if mode == "killed" && c.Procs < 2 {
								continue // rank 0 cannot be killed
							}
							err := sweepOne(c, scheme, part, method, transport, mode)
							res.Runs++
							if err != nil {
								res.Failures = append(res.Failures, SweepFailure{
									Case: c.Name, Scheme: scheme, Partition: part,
									Method: method, Transport: transport,
									Mode: mode, Err: err,
								})
							}
							if sc.Progress != nil {
								sc.Progress(res.Runs, total)
							}
						}
					}
				}
			}
		}
	}
	return res
}

// sweepOne runs a single combination end to end: distribute with the
// invariant checker on, then the differential oracle on the result.
func sweepOne(c check.Case, scheme, part, method, transport, mode string) error {
	cfg := Config{
		Scheme:    scheme,
		Partition: part,
		Method:    method,
		Transport: transport,
		Procs:     c.Procs,
		Check:     true,
		Degrade:   mode != "direct",
	}
	if mode == "killed" {
		// The dead rank is only discovered by exhausting its retry
		// budget; a small budget keeps the sweep fast without changing
		// what is proved.
		cfg.KillRank = c.Procs - 1
		cfg.Retries = 2
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	d, err := Distribute(c.G, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	if mode == "killed" && !d.Result.Degraded {
		return fmt.Errorf("core: killed rank %d but result not degraded", cfg.KillRank)
	}
	return d.DiffCheck()
}
