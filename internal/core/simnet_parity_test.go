package core

import (
	"strings"
	"testing"

	"repro/internal/sparse"
)

// TestSimnetUniformParity is the parity contract of the network model:
// under the uniform topology the replayed timeline's paper breakdown
// must equal the legacy counter totals *exactly* — same Distribution,
// same Compression, for every scheme × partition × method combination.
// The uniform topology prices every (sender, receiver) pair, including
// self-delivery, at Latency = T_Startup and PerWord = T_Data on a
// dedicated link, so wire time is Messages·T_Startup + Elements·T_Data
// per sender and compute charges price via the same cost.Params — both
// in exact integer nanoseconds, hence bit-for-bit equality.
func TestSimnetUniformParity(t *testing.T) {
	g := sparse.Uniform(24, 24, 0.15, 2)
	for _, scheme := range []string{"SFC", "CFS", "ED"} {
		for _, part := range []string{"row", "col", "mesh", "cyclic-row", "cyclic-col", "brs", "cyclic-mesh"} {
			for _, method := range []string{"CRS", "CCS", "JDS"} {
				d, err := Distribute(g, Config{
					Scheme: scheme, Partition: part, Method: method,
					Procs: 4, BlockSize: 2, Topology: "uniform",
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", scheme, part, method, err)
				}
				tl := d.NetTimeline()
				if tl == nil {
					t.Fatalf("%s/%s/%s: no timeline despite Topology", scheme, part, method)
				}
				if tl.Unmatched != 0 {
					t.Errorf("%s/%s/%s: %d unmatched receives", scheme, part, method, tl.Unmatched)
				}
				pb := tl.PaperBreakdown()
				if want := d.DistributionTime(); pb.Distribution != want {
					t.Errorf("%s/%s/%s: sim T_Distribution %v != counter %v",
						scheme, part, method, pb.Distribution, want)
				}
				if want := d.CompressionTime(); pb.Compression != want {
					t.Errorf("%s/%s/%s: sim T_Compression %v != counter %v",
						scheme, part, method, pb.Compression, want)
				}
				if q := tl.TotalQueue(); q != 0 {
					t.Errorf("%s/%s/%s: uniform topology queued %v, want 0", scheme, part, method, q)
				}
				d.Close()
			}
		}
	}
}

// TestSimnetTimelineDeterministic is the end-to-end determinism check
// (run in CI under -race): two identical distributions — and a third
// with a different worker count, which reorders the real encode
// goroutines but not the recorded program order — produce timelines
// with identical hashes.
func TestSimnetTimelineDeterministic(t *testing.T) {
	g := sparse.Uniform(32, 32, 0.12, 7)
	run := func(workers int) uint64 {
		d, err := Distribute(g, Config{
			Scheme: "CFS", Partition: "row", Procs: 4,
			Topology: "star", LinkBW: 2e6, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		return d.NetTimeline().Hash()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("two identical runs hash differently: %x vs %x", a, b)
	}
	if c := run(4); c != a {
		t.Fatalf("worker count changed the virtual timeline: %x vs %x", c, a)
	}
}

// TestSimnetContentionVisible: a congested star root link must show up
// as non-zero queueing and a longer distribution time than uniform.
func TestSimnetContentionVisible(t *testing.T) {
	g := sparse.Uniform(32, 32, 0.2, 3)
	dist := func(topology string, bw float64) (*Distribution, error) {
		return Distribute(g, Config{Scheme: "ED", Partition: "row", Procs: 4, Topology: topology, LinkBW: bw})
	}
	uni, err := dist("uniform", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer uni.Close()
	star, err := dist("star", 1e5) // 10µs/word, ~111x T_Data: a congested root link
	if err != nil {
		t.Fatal(err)
	}
	defer star.Close()

	ub := uni.NetTimeline().PaperBreakdown()
	sb := star.NetTimeline().PaperBreakdown()
	if sb.Distribution <= ub.Distribution {
		t.Errorf("congested star distribution %v not above uniform %v", sb.Distribution, ub.Distribution)
	}
	if star.NetTimeline().MaxLinkUtilization() <= 0 {
		t.Error("no link utilization recorded on star")
	}
	// The counter-side books are topology-blind and must be unchanged.
	if uni.DistributionTime() != star.DistributionTime() {
		t.Errorf("counters changed with topology: %v vs %v", uni.DistributionTime(), star.DistributionTime())
	}
}

// TestSimnetReportInReport: Config.Topology adds the network section to
// the run report.
func TestSimnetReportInReport(t *testing.T) {
	g := sparse.Uniform(16, 16, 0.2, 5)
	d, err := Distribute(g, Config{Procs: 2, Topology: "mesh"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rep := d.Report()
	for _, want := range []string{"network model: topology=mesh p=2", "sim T_Distribution"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
