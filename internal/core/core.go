// Package core is the high-level public API of the library: one call
// distributes a global sparse array over an emulated distributed-memory
// multicomputer with a chosen scheme (SFC, CFS or ED), partition method
// and compression format, and returns a handle for running distributed
// sparse kernels and reading the phase cost breakdown.
//
// The lower-level packages remain available for fine-grained use:
// sparse (arrays and generators), partition (partition methods),
// compress (CRS/CCS/ED buffers), machine (the emulated multicomputer),
// dist (the schemes themselves), costmodel (the paper's closed-form
// analysis) and ops (sparse kernels).
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Config selects how an array is distributed.
type Config struct {
	// Scheme is "SFC", "CFS" or "ED" (default "ED", the paper's
	// recommended scheme).
	Scheme string
	// Partition is "row", "col", "mesh", "cyclic-row", "cyclic-col",
	// "brs", "cyclic-mesh", "balanced-row" (nnz-balanced contiguous
	// rows), or an HPF-style descriptor like "(Block,*)" (default
	// "row").
	Partition string
	// Procs is the processor count (default 4). For "mesh", MeshRows x
	// MeshCols overrides Procs when set.
	Procs              int
	MeshRows, MeshCols int
	// BlockSize is the block-cyclic block size for "brs" (default 1).
	BlockSize int
	// Method is "CRS" or "CCS" (default "CRS").
	Method string
	// Transport is "chan" (default), "tcp" (localhost sockets) or
	// "model" (channel transport that really sleeps T_Startup +
	// words·T_Data per message, so wall time matches the model).
	Transport string
	// Params are the virtual clock unit costs (default cost.DefaultParams).
	Params cost.Params
	// RecvTimeout guards against deadlock (default 30s).
	RecvTimeout time.Duration
	// Trace records every data message for timeline rendering; read it
	// back with Distribution.Trace.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Scheme == "" {
		c.Scheme = "ED"
	}
	if c.Partition == "" {
		c.Partition = "row"
	}
	if c.Procs == 0 {
		c.Procs = 4
	}
	if c.Method == "" {
		c.Method = "CRS"
	}
	if c.Transport == "" {
		c.Transport = "chan"
	}
	if c.Params == (cost.Params{}) {
		c.Params = cost.DefaultParams
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	if c.Partition == "mesh" || c.Partition == "cyclic-mesh" {
		if c.MeshRows == 0 || c.MeshCols == 0 {
			c.MeshRows, c.MeshCols = squareGrid(c.Procs)
		}
		c.Procs = c.MeshRows * c.MeshCols
	}
	if c.BlockSize == 0 {
		c.BlockSize = 1
	}
	return c
}

// squareGrid returns the most square pr x pc factorisation of p.
func squareGrid(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best, p / best
}

// Distribution is a distributed sparse array: the per-rank compressed
// local pieces plus the machine they live on.
type Distribution struct {
	Global    *sparse.Dense
	Partition partition.Partition
	Result    *dist.Result
	Params    cost.Params

	m *machine.Machine
}

// Distribute partitions, distributes and compresses g per the config.
func Distribute(g *sparse.Dense, cfg Config) (*Distribution, error) {
	cfg = cfg.withDefaults()

	part, err := newPartition(g, cfg)
	if err != nil {
		return nil, err
	}
	scheme, err := dist.ByName(strings.ToUpper(cfg.Scheme))
	if err != nil {
		return nil, err
	}
	var method dist.Method
	switch strings.ToUpper(cfg.Method) {
	case "CRS":
		method = dist.CRS
	case "CCS":
		method = dist.CCS
	case "JDS":
		method = dist.JDS
	default:
		return nil, fmt.Errorf("core: unknown method %q (want %s)", cfg.Method, dist.MethodNames())
	}

	var opts []machine.Option
	opts = append(opts, machine.WithRecvTimeout(cfg.RecvTimeout))
	if cfg.Trace {
		opts = append(opts, machine.WithTracer(trace.New()))
	}
	switch cfg.Transport {
	case "chan":
	case "tcp":
		tr, err := machine.NewTCPTransport(cfg.Procs)
		if err != nil {
			return nil, err
		}
		opts = append(opts, machine.WithTransport(tr))
	case "model":
		// Spend the model's communication time for real: wall-clock
		// measurements then reproduce the paper's orderings directly.
		tr := machine.NewModelTransport(machine.NewChanTransport(cfg.Procs), cfg.Params)
		opts = append(opts, machine.WithTransport(tr))
	default:
		return nil, fmt.Errorf("core: unknown transport %q (want chan, tcp or model)", cfg.Transport)
	}
	m, err := machine.New(cfg.Procs, opts...)
	if err != nil {
		return nil, err
	}

	res, err := scheme.Distribute(m, g, part, dist.Options{Method: method})
	if err != nil {
		m.Close()
		return nil, err
	}
	return &Distribution{Global: g, Partition: part, Result: res, Params: cfg.Params, m: m}, nil
}

func newPartition(g *sparse.Dense, cfg Config) (partition.Partition, error) {
	rows, cols := g.Rows(), g.Cols()
	// HPF-style descriptors like "(Block,*)" or "(Cyclic(2),Cyclic)" go
	// through the partition parser.
	if strings.HasPrefix(cfg.Partition, "(") {
		return partition.Parse(cfg.Partition, rows, cols, cfg.Procs)
	}
	switch cfg.Partition {
	case "row":
		return partition.NewRow(rows, cols, cfg.Procs)
	case "col":
		return partition.NewCol(rows, cols, cfg.Procs)
	case "mesh":
		return partition.NewMesh(rows, cols, cfg.MeshRows, cfg.MeshCols)
	case "cyclic-row":
		return partition.NewCyclicRow(rows, cols, cfg.Procs)
	case "cyclic-col":
		return partition.NewCyclicCol(rows, cols, cfg.Procs)
	case "brs":
		return partition.NewBlockCyclicRow(rows, cols, cfg.Procs, cfg.BlockSize)
	case "cyclic-mesh":
		pr, pc := cfg.MeshRows, cfg.MeshCols
		if pr == 0 || pc == 0 {
			pr, pc = squareGrid(cfg.Procs)
		}
		return partition.NewCyclicMesh(rows, cols, pr, pc, cfg.BlockSize, cfg.BlockSize)
	case "balanced-row":
		return partition.NewBalancedRow(g, cfg.Procs)
	default:
		return nil, fmt.Errorf("core: unknown partition %q (want row, col, mesh, cyclic-row, cyclic-col, brs or cyclic-mesh)", cfg.Partition)
	}
}

// Close releases the underlying machine. The compressed local arrays
// remain usable.
func (d *Distribution) Close() error { return d.m.Close() }

// Machine exposes the underlying emulated multicomputer for custom
// SPMD kernels.
func (d *Distribution) Machine() *machine.Machine { return d.m }

// Trace returns the message tracer when Config.Trace was set, else nil.
func (d *Distribution) Trace() *trace.Tracer { return d.m.Tracer() }

// Verify checks every local compressed array against direct compression
// of its part.
func (d *Distribution) Verify() error {
	return dist.Verify(d.Global, d.Partition, d.Result)
}

// SpMV computes y = A·x using the distributed array.
func (d *Distribution) SpMV(x []float64) ([]float64, error) {
	return ops.DistributedSpMV(d.m, d.Partition, d.Result, x)
}

// CG solves A·x = b with the conjugate gradient method over the
// distributed array (A must be symmetric positive definite).
func (d *Distribution) CG(b []float64, tol float64, maxIter int) (*ops.CGResult, error) {
	return ops.DistributedCG(d.m, d.Partition, d.Result, b, tol, maxIter)
}

// DistributionTime returns the virtual data distribution time of the run.
func (d *Distribution) DistributionTime() time.Duration {
	return d.Result.Breakdown.DistributionTime(d.Params)
}

// CompressionTime returns the virtual data compression time of the run.
func (d *Distribution) CompressionTime() time.Duration {
	return d.Result.Breakdown.CompressionTime(d.Params)
}

// Report renders a human-readable summary of the run.
func (d *Distribution) Report() string {
	var b strings.Builder
	bd := d.Result.Breakdown
	fmt.Fprintf(&b, "scheme %s, partition %s, method %s, p = %d\n",
		d.Result.Scheme, d.Result.Partition, d.Result.Method, d.Partition.NumParts())
	fmt.Fprintf(&b, "array %dx%d, nnz %d (s = %.4f)\n",
		d.Global.Rows(), d.Global.Cols(), d.Global.NNZ(), d.Global.SparseRatio())
	fmt.Fprintf(&b, "T_Distribution (virtual) %v   wall %v\n", d.DistributionTime(), bd.WallDistribution())
	fmt.Fprintf(&b, "T_Compression  (virtual) %v   wall %v\n", d.CompressionTime(), bd.WallCompression())
	fmt.Fprintf(&b, "wire: %d messages, %d elements; root ops %d; max rank ops %d\n",
		bd.RootDist.Messages, bd.RootDist.Elements, bd.RootDist.Ops+bd.RootComp.Ops, maxRankOps(bd))
	return b.String()
}

func maxRankOps(bd *dist.Breakdown) int64 {
	var m int64
	for i := range bd.RankDist {
		if t := bd.RankDist[i].Ops + bd.RankComp[i].Ops; t > m {
			m = t
		}
	}
	return m
}
