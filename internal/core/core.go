// Package core is the high-level public API of the library: one call
// distributes a global sparse array over an emulated distributed-memory
// multicomputer with a chosen scheme (SFC, CFS or ED), partition method
// and compression format, and returns a handle for running distributed
// sparse kernels and reading the phase cost breakdown.
//
// The lower-level packages remain available for fine-grained use:
// sparse (arrays and generators), partition (partition methods),
// compress (CRS/CCS/ED buffers), machine (the emulated multicomputer),
// dist (the schemes themselves), costmodel (the paper's closed-form
// analysis) and ops (sparse kernels).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/sparse"
	"repro/internal/spops"
	"repro/internal/trace"
)

// Config selects how an array is distributed.
type Config struct {
	// Ctx, when non-nil, makes the run cancellable: cancelling it aborts
	// the distribution between parts and inside blocked receives, and
	// Distribute returns an error wrapping ctx.Err(). All machine
	// goroutines are joined before the error returns, so the machine is
	// quiescent (and poolable after machine.Drain) even on a cancelled
	// run. Nil runs to completion.
	Ctx context.Context
	// Scheme is "SFC", "CFS" or "ED" (default "ED", the paper's
	// recommended scheme), or "auto" to let the cost model pick the
	// plan from the array's measured statistics: Distribute resolves
	// (scheme x partition x method x workers), pinning any of those the
	// config sets explicitly, and records the decision in
	// Distribution.Auto. DistributeStream rejects "auto" (ErrAutoStream).
	Scheme string
	// Partition is "row", "col", "mesh", "cyclic-row", "cyclic-col",
	// "brs", "cyclic-mesh", "balanced-row" (nnz-balanced contiguous
	// rows), or an HPF-style descriptor like "(Block,*)" (default
	// "row").
	Partition string
	// Procs is the processor count (default 4). For "mesh", MeshRows x
	// MeshCols overrides Procs when set.
	Procs              int
	MeshRows, MeshCols int
	// BlockSize is the block-cyclic block size for "brs" (default 1).
	BlockSize int
	// Method is "CRS" or "CCS" (default "CRS").
	Method string
	// Transport is "chan" (default), "tcp" (localhost sockets) or
	// "model" (channel transport that really sleeps T_Startup +
	// words·T_Data per message, so wall time matches the model).
	Transport string
	// Topology, when set, turns on the discrete-event network model:
	// every data message and compute charge of the run is recorded
	// against a simnet topology ("uniform", "bus", "star", "mesh",
	// "fattree") and replayed into a contention-aware virtual timeline,
	// read back with Distribution.NetTimeline. "uniform" reproduces the
	// flat counter totals exactly (the parity contract); the others
	// price the same traffic under link contention. With Transport
	// "model", the wire sleeps are priced by topology routes too.
	Topology string
	// LinkBW, in payload words per second, overrides the bandwidth of
	// the topology's bottleneck links (see simnet.Build). Zero keeps the
	// cost-model default of 1/T_Data.
	LinkBW float64
	// LinkLatency overrides the per-message latency of the topology's
	// bottleneck links. Zero keeps T_Startup.
	LinkLatency time.Duration
	// Params are the virtual clock unit costs (default cost.DefaultParams).
	Params cost.Params
	// RecvTimeout guards against deadlock (default 30s).
	RecvTimeout time.Duration
	// Workers bounds the root-side encode pool (0 = one per CPU, 1 =
	// the paper's strictly sequential root loop). Virtual costs are
	// identical for any value; wall time improves on multi-core hosts.
	Workers int
	// Trace records every data message for timeline rendering; read it
	// back with Distribution.Trace.
	Trace bool
	// Check turns on the invariant checker for the run (dist
	// Options.Check): decoded part arrays are structurally validated and
	// shape-checked, and ED special buffers are verified at the root
	// before sending. Combine with Distribution.DiffCheck for the full
	// differential oracle.
	Check bool

	// Reliable wraps the transport in the ARQ reliability layer
	// (sequence numbers, CRC32C checksums, ACK/NACK, retransmission
	// with exponential backoff). Implied by Degrade and by any of the
	// retry or fault-injection settings below.
	Reliable bool
	// Retries is the retransmission budget per message (0 takes the
	// library default of 4).
	Retries int
	// RetryBackoff is the initial ACK wait; each retry doubles it (0
	// takes the library default of 5ms).
	RetryBackoff time.Duration
	// Degrade lets a distribution survive dead ranks: the root remaps a
	// dead rank's partition parts onto survivors and the result comes
	// back flagged Degraded.
	Degrade bool

	// MemBudget caps the streaming root's routing-accumulator memory in
	// bytes (DistributeStream only; 0 takes the dist default of 32 MiB).
	MemBudget int
	// FlushEntries is the streaming per-part flush threshold in entries
	// (DistributeStream only; 0 takes the dist default of 8192).
	FlushEntries int

	// FaultDrops / FaultCorrupt inject transient faults for
	// demonstration and testing: the next n data messages are dropped /
	// have a random payload bit flipped.
	FaultDrops   int
	FaultCorrupt int
	// KillRank permanently crashes the given rank before distribution
	// (0 or negative: nobody; rank 0, the root, cannot be killed).
	KillRank int
}

func (c Config) withDefaults() Config {
	if c.Scheme == "" {
		c.Scheme = "ED"
	}
	if c.Partition == "" {
		c.Partition = "row"
	}
	if c.Procs == 0 {
		c.Procs = 4
	}
	if c.Method == "" {
		c.Method = "CRS"
	}
	if c.Transport == "" {
		c.Transport = "chan"
	}
	if c.Params == (cost.Params{}) {
		c.Params = cost.DefaultParams
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	if c.Partition == "mesh" || c.Partition == "cyclic-mesh" {
		if c.MeshRows == 0 || c.MeshCols == 0 {
			c.MeshRows, c.MeshCols = squareGrid(c.Procs)
		}
		c.Procs = c.MeshRows * c.MeshCols
	}
	if c.BlockSize == 0 {
		c.BlockSize = 1
	}
	if c.Degrade || c.Retries > 0 || c.RetryBackoff > 0 || c.injectsFaults() {
		c.Reliable = true
	}
	return c
}

func (c Config) injectsFaults() bool {
	return c.FaultDrops > 0 || c.FaultCorrupt > 0 || c.KillRank > 0
}

// Normalized returns the config with every defaultable field resolved —
// scheme, partition, procs, mesh grid, block size, method, transport,
// params, timeouts, implied reliability — exactly as Distribute would
// resolve them. A serving layer keys its plan cache on the normalized
// config, so "ED" and "" (defaulted) hit the same entry.
func (c Config) Normalized() Config { return c.withDefaults() }

// NewPartition builds the partition cfg describes for g — the planning
// half of Distribute, exported so a serving layer can cache partitions
// across requests and drive the dist engine on a pooled machine itself.
// Call it on a Normalized config.
func NewPartition(g *sparse.Dense, cfg Config) (partition.Partition, error) {
	return newPartition(g, cfg)
}

// NewStreamPartition is NewPartition for a chunked source: the
// nnz-balanced method takes one counting pass over the stream (which is
// rewound afterwards); every other method needs only the shape.
func NewStreamPartition(src sparse.ChunkReader, cfg Config) (partition.Partition, error) {
	return newStreamPartition(src, cfg)
}

// ParseMethod resolves a Config.Method name to the dist-level method.
func ParseMethod(name string) (dist.Method, error) { return parseMethod(name) }

// squareGrid returns the most square pr x pc factorisation of p.
func squareGrid(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best, p / best
}

// Distribution is a distributed sparse array: the per-rank compressed
// local pieces plus the machine they live on.
type Distribution struct {
	// Global is the materialized input array; nil for a streamed run
	// (DistributeStream), which never holds the whole array.
	Global    *sparse.Dense
	Partition partition.Partition
	Result    *dist.Result
	Params    cost.Params
	// Streamed marks a distribution produced by DistributeStream.
	Streamed bool
	// Auto records the cost model's plan decision when the config asked
	// for Scheme "auto"; nil for explicit configs.
	Auto *AutoChoice

	m      *machine.Machine
	rel    *machine.ReliableTransport
	faults *machine.FaultTransport
	net    *simnet.Network

	// The halo-exchange communication plan is pure index structure, so
	// it is built once on first use and shared by every op on this
	// distribution (see CommPlan).
	commOnce sync.Once
	commPlan *spops.CommPlan
	commErr  error
}

// parseMethod resolves a Config.Method name.
func parseMethod(name string) (dist.Method, error) {
	switch strings.ToUpper(name) {
	case "CRS":
		return dist.CRS, nil
	case "CCS":
		return dist.CCS, nil
	case "JDS":
		return dist.JDS, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (want %s)", name, dist.MethodNames())
	}
}

// machineStack is one built emulated machine plus the optional
// reliability and fault-injection layers wired beneath it.
type machineStack struct {
	m      *machine.Machine
	rel    *machine.ReliableTransport
	faults *machine.FaultTransport
	net    *simnet.Network
}

// newMachineStack builds the transport stack and machine for cfg
// (already defaulted). Stacking order: Reliable(Fault(base)) — injected
// faults hit the wire *below* the reliability layer, which then
// recovers from them.
func newMachineStack(cfg Config) (*machineStack, error) {
	if cfg.KillRank >= cfg.Procs {
		return nil, fmt.Errorf("core: KillRank %d out of range for %d processors", cfg.KillRank, cfg.Procs)
	}
	if cfg.KillRank > 0 && !cfg.Degrade {
		return nil, fmt.Errorf("core: KillRank without Degrade cannot complete; set Degrade")
	}

	// The network model is built first so the model transport can price
	// its sleeps by topology routes instead of the flat charge.
	var net *simnet.Network
	if cfg.Topology != "" {
		top, err := simnet.Build(cfg.Topology, cfg.Procs, cfg.Params, cfg.LinkBW, cfg.LinkLatency)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		net = simnet.NewNetwork(top, cfg.Params)
	}

	var base machine.Transport
	switch cfg.Transport {
	case "chan":
		base = machine.NewChanTransport(cfg.Procs)
	case "tcp":
		tr, err := machine.NewTCPTransport(cfg.Procs)
		if err != nil {
			return nil, err
		}
		base = tr
	case "model":
		// Spend the model's communication time for real: wall-clock
		// measurements then reproduce the paper's orderings directly.
		// Under a topology the sleeps follow the routes (a congested
		// root link slows wall time, a mesh send pays per hop).
		if net != nil {
			base = machine.NewModelTransportTopo(machine.NewChanTransport(cfg.Procs), net.Topology())
		} else {
			base = machine.NewModelTransport(machine.NewChanTransport(cfg.Procs), cfg.Params)
		}
	default:
		return nil, fmt.Errorf("core: unknown transport %q (want chan, tcp or model)", cfg.Transport)
	}

	var ft *machine.FaultTransport
	if cfg.injectsFaults() {
		ft = machine.NewFaultTransport(base)
		base = ft
	}
	var tracer *trace.Tracer
	if cfg.Trace || cfg.Reliable {
		tracer = trace.New()
	}
	var rt *machine.ReliableTransport
	if cfg.Reliable {
		rt = machine.NewReliableTransport(base, machine.RetryPolicy{
			MaxRetries: cfg.Retries,
			BaseDelay:  cfg.RetryBackoff,
		})
		rt.SetTracer(tracer)
		base = rt
	}

	opts := []machine.Option{
		machine.WithRecvTimeout(cfg.RecvTimeout),
		machine.WithTransport(base),
	}
	if tracer != nil {
		opts = append(opts, machine.WithTracer(tracer))
	}
	if net != nil {
		opts = append(opts, machine.WithNetwork(net))
	}
	m, err := machine.New(cfg.Procs, opts...)
	if err != nil {
		return nil, err
	}

	if ft != nil {
		if cfg.FaultDrops > 0 {
			ft.DropNext(cfg.FaultDrops)
		}
		if cfg.FaultCorrupt > 0 {
			ft.CorruptNext(cfg.FaultCorrupt)
		}
		if cfg.KillRank > 0 {
			ft.KillRank(cfg.KillRank)
		}
	}
	return &machineStack{m: m, rel: rt, faults: ft, net: net}, nil
}

// Distribute partitions, distributes and compresses g per the config.
// Scheme "auto" is resolved here: the cost model picks the plan before
// the run, and the decision comes back in Distribution.Auto.
func Distribute(g *sparse.Dense, cfg Config) (*Distribution, error) {
	var auto *AutoChoice
	if IsAutoScheme(cfg.Scheme) {
		var err error
		cfg, auto, err = ResolveAuto(g, cfg)
		if err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()

	part, err := newPartition(g, cfg)
	if err != nil {
		return nil, err
	}
	scheme, err := dist.ByName(strings.ToUpper(cfg.Scheme))
	if err != nil {
		return nil, err
	}
	method, err := parseMethod(cfg.Method)
	if err != nil {
		return nil, err
	}

	st, err := newMachineStack(cfg)
	if err != nil {
		return nil, err
	}

	res, err := scheme.Distribute(st.m, g, part, dist.Options{Method: method, Degrade: cfg.Degrade, Workers: cfg.Workers, Check: cfg.Check, Ctx: cfg.Ctx})
	if err != nil {
		st.m.Close()
		return nil, err
	}
	return &Distribution{Global: g, Partition: part, Result: res, Params: cfg.Params, Auto: auto, m: st.m, rel: st.rel, faults: st.faults, net: st.net}, nil
}

// DistributeStream is Distribute for an out-of-core source: the global
// array is never materialized. The root routes bounded chunks from src
// straight into per-rank frames under cfg.MemBudget, receivers
// reassemble and compress their parts, and the returned Distribution
// carries a nil Global — use VerifyAgainst/DiffCheckAgainst with an
// independently materialized oracle when one fits in memory. Virtual
// cost counters are identical to the materializing path by construction
// (dist.RunStream's parity contract).
func DistributeStream(src sparse.ChunkReader, cfg Config) (*Distribution, error) {
	if IsAutoScheme(cfg.Scheme) {
		return nil, ErrAutoStream
	}
	cfg = cfg.withDefaults()

	part, err := newStreamPartition(src, cfg)
	if err != nil {
		return nil, err
	}
	codec, err := dist.CodecByName(strings.ToUpper(cfg.Scheme))
	if err != nil {
		return nil, err
	}
	method, err := parseMethod(cfg.Method)
	if err != nil {
		return nil, err
	}

	st, err := newMachineStack(cfg)
	if err != nil {
		return nil, err
	}

	res, err := dist.RunStream(st.m, dist.StreamPlan{
		Codec:     codec,
		Source:    src,
		Partition: part,
		Options:   dist.Options{Method: method, Degrade: cfg.Degrade, Check: cfg.Check, Ctx: cfg.Ctx},
		Stream:    dist.StreamOptions{FlushEntries: cfg.FlushEntries, MemBudget: cfg.MemBudget},
	})
	if err != nil {
		st.m.Close()
		return nil, err
	}
	return &Distribution{Partition: part, Result: res, Params: cfg.Params, Streamed: true, m: st.m, rel: st.rel, faults: st.faults, net: st.net}, nil
}

// Batch is a set of distributions sharing one emulated machine,
// produced by DistributeAll. Close the batch once when done — the
// member Distributions all point at the shared machine, so do not
// additionally call their individual Close methods.
type Batch struct {
	Distributions []*Distribution

	m *machine.Machine
}

// Machine exposes the shared emulated multicomputer.
func (b *Batch) Machine() *machine.Machine { return b.m }

// Close releases the shared machine. The compressed local arrays of
// every member distribution remain usable.
func (b *Batch) Close() error { return b.m.Close() }

// perPlanZeroed returns cfg with the per-plan fields cleared, leaving
// only the fields that determine the machine and transport stack.
func (c Config) perPlanZeroed() Config {
	c.Scheme, c.Partition, c.Method = "", "", ""
	c.MeshRows, c.MeshCols = 0, 0
	c.BlockSize = 0
	c.Workers = 0
	c.Degrade = false
	c.Ctx = nil // cancellation is per plan, not a machine-level setting
	return c
}

// DistributeAll distributes g under every config concurrently over one
// shared emulated machine (a dist.Session). Each plan's frames travel
// on a tag range drawn from the machine's allocator, so the runs
// interleave without stealing each other's messages and every
// Breakdown counts exactly its own plan's costs. Scheme, partition,
// method, workers and Degrade may differ per config; the machine-level
// settings (Procs, Transport, Params, RecvTimeout, Trace, reliability
// and fault injection) must agree across all configs, since there is
// only one machine.
func DistributeAll(g *sparse.Dense, cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: DistributeAll needs at least one config")
	}
	autos := make([]*AutoChoice, len(cfgs))
	for i := range cfgs {
		if IsAutoScheme(cfgs[i].Scheme) {
			resolved, choice, err := ResolveAuto(g, cfgs[i])
			if err != nil {
				return nil, fmt.Errorf("core: DistributeAll config %d: %w", i, err)
			}
			cfgs[i], autos[i] = resolved, choice
		}
		cfgs[i] = cfgs[i].withDefaults()
	}
	ref := cfgs[0].perPlanZeroed()
	// A Degrade plan needs the reliable transport, so any config asking
	// for it forces the shared stack to be reliable.
	for _, cfg := range cfgs {
		if cfg.Reliable {
			ref.Reliable = true
		}
	}
	for i, cfg := range cfgs {
		got := cfg.perPlanZeroed()
		got.Reliable = ref.Reliable
		if got != ref {
			return nil, fmt.Errorf("core: DistributeAll config %d differs from config 0 in machine-level settings (procs, transport, params, timeouts, faults)", i)
		}
	}
	shared := cfgs[0]
	shared.Reliable = ref.Reliable
	shared.Degrade = anyDegrade(cfgs)

	parts := make([]partition.Partition, len(cfgs))
	plans := make([]dist.Plan, len(cfgs))
	for i, cfg := range cfgs {
		part, err := newPartition(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: DistributeAll config %d: %w", i, err)
		}
		codec, err := dist.CodecByName(strings.ToUpper(cfg.Scheme))
		if err != nil {
			return nil, fmt.Errorf("core: DistributeAll config %d: %w", i, err)
		}
		method, err := parseMethod(cfg.Method)
		if err != nil {
			return nil, fmt.Errorf("core: DistributeAll config %d: %w", i, err)
		}
		parts[i] = part
		plans[i] = dist.Plan{
			Codec:     codec,
			Global:    g,
			Partition: part,
			Options:   dist.Options{Method: method, Degrade: cfg.Degrade, Workers: cfg.Workers, Check: cfg.Check, Ctx: cfg.Ctx},
		}
	}

	st, err := newMachineStack(shared)
	if err != nil {
		return nil, err
	}
	results, err := dist.NewSession(st.m).DistributeAll(plans)
	if err != nil {
		st.m.Close()
		return nil, err
	}

	b := &Batch{Distributions: make([]*Distribution, len(cfgs)), m: st.m}
	for i, res := range results {
		b.Distributions[i] = &Distribution{
			Global: g, Partition: parts[i], Result: res, Params: cfgs[i].Params, Auto: autos[i],
			m: st.m, rel: st.rel, faults: st.faults, net: st.net,
		}
	}
	return b, nil
}

func anyDegrade(cfgs []Config) bool {
	for _, cfg := range cfgs {
		if cfg.Degrade {
			return true
		}
	}
	return false
}

func newPartition(g *sparse.Dense, cfg Config) (partition.Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil array")
	}
	return newPartitionAt(g.Rows(), g.Cols(), cfg,
		func() ([]int, error) { return sparse.RowNNZ(g), nil })
}

// newStreamPartition plans from a chunked source: the shape is free,
// and the nnz-balanced partition takes one cheap counting pass
// (sparse.ScanStats) over the stream, which rewinds it afterwards. The
// count pass feeds the same boundary sweep the materialized planner
// uses, so a streamed plan lands on identical part boundaries.
func newStreamPartition(src sparse.ChunkReader, cfg Config) (partition.Partition, error) {
	rows, cols := src.Shape()
	return newPartitionAt(rows, cols, cfg, func() ([]int, error) {
		st, err := sparse.ScanStats(src)
		if err != nil {
			return nil, fmt.Errorf("core: counting pass for balanced partition: %w", err)
		}
		return st.RowNNZ, nil
	})
}

// newPartitionAt resolves cfg.Partition for a rows x cols array whose
// per-row nonzero histogram, if a balanced plan needs it, comes from
// rowNNZ — a dense scan or a streaming count pass.
func newPartitionAt(rows, cols int, cfg Config, rowNNZ func() ([]int, error)) (partition.Partition, error) {
	// HPF-style descriptors like "(Block,*)" or "(Cyclic(2),Cyclic)" go
	// through the partition parser.
	if strings.HasPrefix(cfg.Partition, "(") {
		return partition.Parse(cfg.Partition, rows, cols, cfg.Procs)
	}
	switch cfg.Partition {
	case "row":
		return partition.NewRow(rows, cols, cfg.Procs)
	case "col":
		return partition.NewCol(rows, cols, cfg.Procs)
	case "mesh":
		return partition.NewMesh(rows, cols, cfg.MeshRows, cfg.MeshCols)
	case "cyclic-row":
		return partition.NewCyclicRow(rows, cols, cfg.Procs)
	case "cyclic-col":
		return partition.NewCyclicCol(rows, cols, cfg.Procs)
	case "brs":
		return partition.NewBlockCyclicRow(rows, cols, cfg.Procs, cfg.BlockSize)
	case "cyclic-mesh":
		pr, pc := cfg.MeshRows, cfg.MeshCols
		if pr == 0 || pc == 0 {
			pr, pc = squareGrid(cfg.Procs)
		}
		return partition.NewCyclicMesh(rows, cols, pr, pc, cfg.BlockSize, cfg.BlockSize)
	case "balanced-row":
		counts, err := rowNNZ()
		if err != nil {
			return nil, err
		}
		return partition.NewBalancedRowFromCounts(counts, cols, cfg.Procs)
	default:
		return nil, fmt.Errorf("core: unknown partition %q (want row, col, mesh, cyclic-row, cyclic-col, brs or cyclic-mesh)", cfg.Partition)
	}
}

// Close releases the underlying machine. The compressed local arrays
// remain usable.
func (d *Distribution) Close() error { return d.m.Close() }

// Machine exposes the underlying emulated multicomputer for custom
// SPMD kernels.
func (d *Distribution) Machine() *machine.Machine { return d.m }

// Trace returns the message tracer when Config.Trace was set, else nil.
func (d *Distribution) Trace() *trace.Tracer { return d.m.Tracer() }

// NetTimeline replays the recorded network activity into the virtual
// timeline; nil when no Config.Topology was set. Deterministic for a
// single-plan run (Distribute/DistributeStream): the timeline is a pure
// function of the per-rank operation sequences. A DistributeAll batch
// shares one recorder across concurrently interleaving plans, so its
// timeline is complete but not run-to-run stable.
func (d *Distribution) NetTimeline() *simnet.Timeline {
	if d.net == nil {
		return nil
	}
	return d.net.Finalize()
}

// ReliableStats returns the reliability layer's counters; ok is false
// when the run was not reliable.
func (d *Distribution) ReliableStats() (st machine.ReliableStats, ok bool) {
	if d.rel == nil {
		return machine.ReliableStats{}, false
	}
	return d.rel.Stats(), true
}

// FaultStats returns the fault injector's counters; ok is false when no
// faults were configured.
func (d *Distribution) FaultStats() (st machine.FaultStats, ok bool) {
	if d.faults == nil {
		return machine.FaultStats{}, false
	}
	return d.faults.FullStats(), true
}

// Verify checks every local compressed array against direct compression
// of its part. A streamed distribution has no retained global array;
// use VerifyAgainst with an independent oracle instead.
func (d *Distribution) Verify() error {
	if d.Global == nil {
		return fmt.Errorf("core: streamed distribution retains no global array; use VerifyAgainst with a materialized oracle")
	}
	return dist.Verify(d.Global, d.Partition, d.Result)
}

// VerifyAgainst is Verify against an externally supplied global array —
// the differential oracle for streamed runs (e.g. sparse.Materialize of
// the same source, when it fits in memory).
func (d *Distribution) VerifyAgainst(g *sparse.Dense) error {
	return dist.Verify(g, d.Partition, d.Result)
}

// DiffCheck runs the differential oracle on the finished distribution:
// every local piece is invariant-checked, the dense global array is
// reassembled from the pieces through the partition's ownership maps,
// and the reassembly is diffed element-wise against the input. It
// returns a typed *check.Violation (malformed piece) or
// *check.DiffError (data in the wrong place), nil when the
// distribution is exact.
func (d *Distribution) DiffCheck() error {
	if d.Global == nil {
		return fmt.Errorf("core: streamed distribution retains no global array; use DiffCheckAgainst with a materialized oracle")
	}
	return d.DiffCheckAgainst(d.Global)
}

// DiffCheckAgainst is DiffCheck against an externally supplied global
// array, for streamed runs.
func (d *Distribution) DiffCheckAgainst(g *sparse.Dense) error {
	return check.Distribution(g, check.Pieces(d.Partition, d.Result.PartArrays()))
}

// SpMV computes y = A·x using the distributed array.
func (d *Distribution) SpMV(x []float64) ([]float64, error) {
	return ops.DistributedSpMV(d.m, d.Partition, d.Result, x)
}

// CG solves A·x = b with the conjugate gradient method over the
// distributed array (A must be symmetric positive definite).
func (d *Distribution) CG(b []float64, tol float64, maxIter int) (*ops.CGResult, error) {
	return ops.DistributedCG(d.m, d.Partition, d.Result, b, tol, maxIter)
}

// DistributionTime returns the virtual data distribution time of the run.
func (d *Distribution) DistributionTime() time.Duration {
	return d.Result.Breakdown.DistributionTime(d.Params)
}

// CompressionTime returns the virtual data compression time of the run.
func (d *Distribution) CompressionTime() time.Duration {
	return d.Result.Breakdown.CompressionTime(d.Params)
}

// Report renders a human-readable summary of the run.
func (d *Distribution) Report() string {
	var b strings.Builder
	bd := d.Result.Breakdown
	fmt.Fprintf(&b, "scheme %s, partition %s, method %s, p = %d\n",
		d.Result.Scheme, d.Result.Partition, d.Result.Method, d.Partition.NumParts())
	if d.Auto != nil {
		fmt.Fprintf(&b, "auto-selected: scheme %s, partition %s, method %s, workers %d (predicted dist %v, comp %v)\n",
			d.Auto.Scheme, d.Auto.Partition, d.Auto.Method, d.Auto.Workers,
			d.Auto.Predicted.Distribution, d.Auto.Predicted.Compression)
	}
	rows, cols := d.Partition.Shape()
	if d.Global != nil {
		fmt.Fprintf(&b, "array %dx%d, nnz %d (s = %.4f)\n",
			d.Global.Rows(), d.Global.Cols(), d.Global.NNZ(), d.Global.SparseRatio())
	} else {
		// Streamed run: the global array was never held; count what the
		// parts actually store.
		nnz := 0
		for _, a := range d.Result.PartArrays() {
			if a != nil {
				nnz += a.NNZ()
			}
		}
		fmt.Fprintf(&b, "array %dx%d (streamed), nnz %d (s = %.4f)\n",
			rows, cols, nnz, float64(nnz)/float64(rows*cols))
	}
	b.WriteString(trace.PhaseTable([]trace.PhaseStat{
		{Name: "T_Distribution", Virtual: d.DistributionTime(), Wall: bd.WallDistribution()},
		{Name: "T_Compression", Virtual: d.CompressionTime(), Wall: bd.WallCompression()},
	}))
	fmt.Fprintf(&b, "wire: %d messages, %d elements; root ops %d; max rank ops %d\n",
		bd.RootDist.Messages, bd.RootDist.Elements, bd.RootDist.Ops+bd.RootComp.Ops, maxRankOps(bd))
	if st, ok := d.ReliableStats(); ok {
		fmt.Fprintf(&b, "reliability: %d data msgs, %d retransmits, %d nacks, %d corrupt, %d duplicates, %d failed\n",
			st.DataSent, st.Retransmits, st.Nacks, st.Corrupt, st.Duplicates, st.Failed)
	}
	if st, ok := d.FaultStats(); ok {
		fmt.Fprintf(&b, "injected faults: %d dropped, %d corrupted, %d duplicated, %d reordered, %d swallowed\n",
			st.Dropped, st.Corrupted, st.Duplicated, st.Reordered, st.Swallowed)
	}
	if d.Result.Degraded {
		fmt.Fprintf(&b, "DEGRADED: dead ranks %v; reassigned parts", d.Result.DeadRanks)
		for _, k := range sortedKeys(d.Result.Reassigned) {
			fmt.Fprintf(&b, " %d->rank%d", k, d.Result.Reassigned[k])
		}
		fmt.Fprintln(&b)
	}
	if tr := d.m.Tracer(); tr != nil && len(tr.Counters()) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, line := range strings.Split(strings.TrimRight(tr.CountersString(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	if tl := d.NetTimeline(); tl != nil {
		b.WriteString(tl.Report())
	}
	return b.String()
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func maxRankOps(bd *dist.Breakdown) int64 {
	var m int64
	for i := range bd.RankDist {
		if t := bd.RankDist[i].Ops + bd.RankComp[i].Ops; t > m {
			m = t
		}
	}
	return m
}
