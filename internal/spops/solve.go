package spops

import (
	"fmt"
	"math"

	"repro/internal/machine"
)

// maxOp and sumOp fold scalar reduction operands.
func maxOp(acc, in []float64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

func sumOp(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// requireSquare rejects plans whose array cannot feed y back as x.
func requireSquare(pl *CommPlan, op string) error {
	if pl.Rows != pl.Cols {
		return fmt.Errorf("spops: %s needs a square array, got %dx%d", op, pl.Rows, pl.Cols)
	}
	return nil
}

// Jacobi solves A·x = b by Jacobi iteration on the distributed
// array. Vector segments stay resident at their owners: each sweep
// is one halo exchange, local multiplies of the hosted parts, a
// partial-sum route to the row owners, the pointwise Jacobi update
// x_i ← (b_i − (Ax)_i + A_ii·x_i)/A_ii, and a two-message-per-rank
// scalar allreduce for the convergence test — per-iteration traffic
// is O(halo + p), never O(n·p). The diagonal must be fully nonzero.
//
// x0 may be nil (zero start). Returns the solution assembled at the
// IO rank.
func Jacobi(m *machine.Machine, pl *CommPlan, b, x0 []float64, tol float64, maxIter int) ([]float64, OpStats, error) {
	if err := requireSquare(pl, "Jacobi"); err != nil {
		return nil, OpStats{}, err
	}
	if len(b) != pl.Rows {
		return nil, OpStats{}, fmt.Errorf("spops: Jacobi: b has %d entries, want %d", len(b), pl.Rows)
	}
	if x0 != nil && len(x0) != pl.Cols {
		return nil, OpStats{}, fmt.Errorf("spops: Jacobi: x0 has %d entries, want %d", len(x0), pl.Cols)
	}
	if maxIter <= 0 {
		return nil, OpStats{}, fmt.Errorf("spops: Jacobi: maxIter %d", maxIter)
	}
	for i, d := range pl.Diag {
		if d == 0 {
			return nil, OpStats{}, fmt.Errorf("spops: Jacobi: zero diagonal at row %d", i)
		}
	}
	if x0 == nil {
		x0 = make([]float64, pl.Cols)
	}

	e := newExec(m, pl)
	x := make([]float64, pl.Cols)
	var iters int
	var converged bool
	err := e.run(func(pr *machine.Proc) error {
		st := e.st[pr.Rank]
		// Resident b segment: shipped once, like the x segments. The
		// diagonal segment comes from the plan (root-side metadata,
		// uncharged like the plan's index lists).
		bSeg := make([]float64, len(st.ySeg))
		if err := e.scatterSeg(pr, b, bSeg, tagFetch); err != nil {
			return err
		}
		if err := e.scatterX(pr, x0); err != nil {
			return err
		}
		diag := pl.Diag[st.ylo:st.yhi]

		it, conv := 0, false
		for it < maxIter {
			if err := e.halo(pr); err != nil {
				return err
			}
			e.compute(pr)
			if err := e.yRoute(pr); err != nil {
				return err
			}
			// Jacobi update on the owned (conformal) segment.
			maxDelta := 0.0
			for i := range st.xSeg {
				old := st.xSeg[i]
				next := (bSeg[i] - st.ySeg[i] + diag[i]*old) / diag[i]
				if d := math.Abs(next - old); d > maxDelta {
					maxDelta = d
				}
				st.xSeg[i] = next
			}
			it++
			red, err := e.allreduce(pr, []float64{maxDelta}, maxOp)
			if err != nil {
				return err
			}
			if red[0] < tol {
				conv = true
				break
			}
		}
		// Assemble the solution at the IO rank from the resident
		// segments (the x-cut equals the y-cut on a square array).
		if err := e.gatherXSeg(pr, x); err != nil {
			return err
		}
		if pr.Rank == pl.IO {
			iters, converged = it, conv
		}
		return nil
	})
	if err != nil {
		return nil, OpStats{}, err
	}
	stats := e.stats("jacobi", iters)
	stats.Converged = converged
	return x, stats, nil
}

// Power runs power iteration on the distributed square array:
// repeated resident-segment SpMV sweeps with a two-scalar allreduce
// per iteration (norm² and Rayleigh numerator). Returns the dominant
// eigenvalue estimate and its normalised eigenvector.
func Power(m *machine.Machine, pl *CommPlan, tol float64, maxIter int) (float64, []float64, OpStats, error) {
	if err := requireSquare(pl, "Power"); err != nil {
		return 0, nil, OpStats{}, err
	}
	if maxIter <= 0 {
		return 0, nil, OpStats{}, fmt.Errorf("spops: Power: maxIter %d", maxIter)
	}
	x0 := make([]float64, pl.Cols)
	for i := range x0 {
		x0[i] = 1 / math.Sqrt(float64(pl.Cols))
	}

	e := newExec(m, pl)
	x := make([]float64, pl.Cols)
	var lambda float64
	var iters int
	var converged bool
	err := e.run(func(pr *machine.Proc) error {
		st := e.st[pr.Rank]
		if err := e.scatterX(pr, x0); err != nil {
			return err
		}
		it, conv := 0, false
		prev := math.Inf(1)
		lam := 0.0
		for it < maxIter {
			if err := e.halo(pr); err != nil {
				return err
			}
			e.compute(pr)
			if err := e.yRoute(pr); err != nil {
				return err
			}
			// Rayleigh numerator x·y and norm² of y over the owned
			// conformal segment.
			dot, nsq := 0.0, 0.0
			for i, v := range st.ySeg {
				dot += st.xSeg[i] * v
				nsq += v * v
			}
			red, err := e.allreduce(pr, []float64{dot, nsq}, sumOp)
			if err != nil {
				return err
			}
			it++
			lam = red[0]
			norm := math.Sqrt(red[1])
			if norm == 0 {
				// A annihilated x: eigenvalue 0, keep the zero vector.
				for i := range st.xSeg {
					st.xSeg[i] = 0
				}
				conv = true
				break
			}
			for i := range st.xSeg {
				st.xSeg[i] = st.ySeg[i] / norm
			}
			if math.Abs(lam-prev) < tol*math.Max(1, math.Abs(lam)) {
				conv = true
				break
			}
			prev = lam
		}
		if err := e.gatherXSeg(pr, x); err != nil {
			return err
		}
		if pr.Rank == pl.IO {
			lambda, iters, converged = lam, it, conv
		}
		return nil
	})
	if err != nil {
		return 0, nil, OpStats{}, err
	}
	stats := e.stats("power", iters)
	stats.Converged = converged
	return lambda, x, stats, nil
}

// scatterSeg ships each owner its y-cut slice of v from the IO rank
// into dst (used for the Jacobi right-hand side).
func (e *exec) scatterSeg(pr *machine.Proc, v, dst []float64, tagOff int) error {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank == pl.IO {
		for _, r := range pl.alive {
			lo, hi := pl.yRange(r)
			if r == pl.IO {
				copy(dst, v[lo:hi])
				continue
			}
			if hi-lo == 0 {
				continue
			}
			if err := pr.Send(r, e.tag(tagOff), [4]int64{int64(lo)}, v[lo:hi], &st.wire); err != nil {
				return fmt.Errorf("spops: scatter seg to %d: %w", r, err)
			}
		}
		return nil
	}
	if st.yhi-st.ylo == 0 {
		return nil
	}
	msg, err := pr.RecvFrom(pl.IO, e.tag(tagOff))
	if err != nil {
		return fmt.Errorf("spops: rank %d scatter seg recv: %w", pr.Rank, err)
	}
	copy(dst, msg.Data)
	return nil
}

// gatherXSeg collects the resident x segments at the IO rank into x.
func (e *exec) gatherXSeg(pr *machine.Proc, x []float64) error {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank != pl.IO {
		if st.xhi-st.xlo == 0 {
			return nil
		}
		return pr.Send(pl.IO, e.tag(tagGather), [4]int64{int64(st.xlo)}, st.xSeg, &st.wire)
	}
	copy(x[st.xlo:st.xhi], st.xSeg)
	for _, r := range pl.alive {
		lo, hi := pl.xRange(r)
		if r == pl.IO || hi-lo == 0 {
			continue
		}
		msg, err := pr.RecvFrom(r, e.tag(tagGather))
		if err != nil {
			return fmt.Errorf("spops: gather x from %d: %w", r, err)
		}
		copy(x[lo:hi], msg.Data)
	}
	return nil
}
