package spops_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/sparse"
	"repro/internal/spops"
)

// denseMatVec is the sequential oracle y = G·x.
func denseMatVec(g *sparse.Dense, x []float64) []float64 {
	y := make([]float64, g.Rows())
	for i := 0; i < g.Rows(); i++ {
		s := 0.0
		for j := 0; j < g.Cols(); j++ {
			s += g.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func vecClose(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: entry %d = %g, want %g", label, i, got[i], want[i])
		}
	}
}

// distribute runs core.Distribute and builds the plan; the caller
// must Close the distribution.
func distribute(t *testing.T, g *sparse.Dense, cfg core.Config) (*core.Distribution, *spops.CommPlan) {
	t.Helper()
	d, err := core.Distribute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := spops.BuildCommPlan(d.Partition, d.Result)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	return d, pl
}

// TestSpMVOracleMatrix verifies the halo-exchange SpMV element-wise
// against the dense mat-vec across every scheme x partition x method
// combination on a non-square array.
func TestSpMVOracleMatrix(t *testing.T) {
	g := sparse.Uniform(37, 29, 0.15, 42)
	x := randVec(29, 7)
	want := denseMatVec(g, x)
	for _, scheme := range []string{"SFC", "CFS", "ED"} {
		for _, part := range []string{"row", "col", "mesh", "cyclic-row"} {
			for _, method := range []string{"CRS", "CCS", "JDS"} {
				name := fmt.Sprintf("%s/%s/%s", scheme, part, method)
				t.Run(name, func(t *testing.T) {
					d, pl := distribute(t, g, core.Config{
						Scheme: scheme, Partition: part, Method: method, Procs: 4,
					})
					defer d.Close()
					y, st, err := spops.SpMV(d.Machine(), pl, x)
					if err != nil {
						t.Fatal(err)
					}
					vecClose(t, y, want, 1e-12, "SpMV")
					if st.WireWords <= 0 || st.Messages <= 0 {
						t.Fatalf("no traffic accounted: %+v", st)
					}
				})
			}
		}
	}
}

// TestSpMVDegenerate covers empty rows/columns, the zero matrix, and
// more processors than rows.
func TestSpMVDegenerate(t *testing.T) {
	cases := []struct {
		name string
		g    *sparse.Dense
		p    int
	}{
		{"zero", sparse.NewDense(9, 11), 3},
		{"diagonal", sparse.Diagonal(8, 2, 0, 3, 0, 5, 0, 7, 0), 4},
		{"more-procs-than-rows", sparse.Uniform(3, 12, 0.4, 5), 6},
		{"single-proc", sparse.Uniform(10, 10, 0.3, 9), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := randVec(tc.g.Cols(), 13)
			want := denseMatVec(tc.g, x)
			d, pl := distribute(t, tc.g, core.Config{Partition: "row", Procs: tc.p})
			defer d.Close()
			y, _, err := spops.SpMV(d.Machine(), pl, x)
			if err != nil {
				t.Fatal(err)
			}
			vecClose(t, y, want, 1e-12, "SpMV")
		})
	}
}

// TestPlanHaloBeatsBroadcast asserts the acceptance-criteria
// inequality at the plan level: on a banded array at s <= 0.1 the
// halo exchange moves strictly fewer words per sweep than the
// broadcast path.
func TestPlanHaloBeatsBroadcast(t *testing.T) {
	g := sparse.Banded(256, 256, 8, 0.8, 3) // s ≈ 0.05
	if r := g.SparseRatio(); r > 0.1 {
		t.Fatalf("banded test matrix too dense: s=%.3f", r)
	}
	for _, part := range []string{"row", "col", "mesh"} {
		t.Run(part, func(t *testing.T) {
			d, pl := distribute(t, g, core.Config{Partition: part, Procs: 4})
			defer d.Close()
			if pl.Stats.HaloWords >= pl.Stats.BcastWords {
				t.Fatalf("halo %d words >= broadcast %d words", pl.Stats.HaloWords, pl.Stats.BcastWords)
			}
			// The measured one-shot traffic must also beat broadcast +
			// gather: scatter + halo + y-route + gather < n(p-1) + n.
			x := randVec(256, 1)
			_, st, err := spops.SpMV(d.Machine(), pl, x)
			if err != nil {
				t.Fatal(err)
			}
			bcastTotal := pl.Stats.BcastWords + 256
			if st.WireWords >= bcastTotal {
				t.Fatalf("measured %d words >= broadcast-path %d", st.WireWords, bcastTotal)
			}
		})
	}
}

// TestJacobiSolves checks the resident-segment Jacobi against a
// diagonally dominant system across partitions and methods.
func TestJacobiSolves(t *testing.T) {
	n := 48
	g := sparse.Uniform(n, n, 0.08, 21).Clone()
	for i := 0; i < n; i++ {
		// Make the system strictly diagonally dominant.
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += math.Abs(g.At(i, j))
			}
		}
		g.Set(i, i, sum+1)
	}
	b := randVec(n, 99)
	for _, part := range []string{"row", "col", "mesh", "cyclic-row"} {
		for _, method := range []string{"CRS", "CCS", "JDS"} {
			t.Run(part+"/"+method, func(t *testing.T) {
				d, pl := distribute(t, g, core.Config{Partition: part, Method: method, Procs: 4})
				defer d.Close()
				x, st, err := spops.Jacobi(d.Machine(), pl, b, nil, 1e-12, 500)
				if err != nil {
					t.Fatal(err)
				}
				if !st.Converged {
					t.Fatalf("did not converge in %d iterations", st.Iterations)
				}
				vecClose(t, denseMatVec(g, x), b, 1e-8, "A·x")
			})
		}
	}
}

// TestPowerIteration recovers the dominant eigenpair of a diagonal
// array, where the answer is exact.
func TestPowerIteration(t *testing.T) {
	g := sparse.Diagonal(12, 1, 2, 3, 9, 4, 5, 1, 2, 3, 4, 5, 6)
	d, pl := distribute(t, g, core.Config{Partition: "row", Procs: 4})
	defer d.Close()
	lambda, vec, st, err := spops.Power(d.Machine(), pl, 1e-12, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("power iteration did not converge in %d iterations", st.Iterations)
	}
	if math.Abs(lambda-9) > 1e-6 {
		t.Fatalf("lambda = %g, want 9", lambda)
	}
	for i, v := range vec {
		want := 0.0
		if i == 3 {
			want = 1
		}
		if math.Abs(math.Abs(v)-want) > 1e-4 {
			t.Fatalf("eigenvector[%d] = %g, want ±%g", i, v, want)
		}
	}
}

// TestDistSpGEMMOracle verifies the row-fetch SpGEMM element-wise
// against the sequential Gustavson kernel.
func TestDistSpGEMMOracle(t *testing.T) {
	ga := sparse.Uniform(30, 24, 0.15, 11)
	gb := sparse.Uniform(24, 18, 0.2, 12)
	bcrs := compress.CompressCRS(gb, nil)
	want, err := ops.SpGEMM(compress.CompressCRS(ga, nil), bcrs)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"SFC", "CFS", "ED"} {
		for _, part := range []string{"row", "col", "mesh", "cyclic-row"} {
			for _, method := range []string{"CRS", "CCS", "JDS"} {
				t.Run(scheme+"/"+part+"/"+method, func(t *testing.T) {
					d, pl := distribute(t, ga, core.Config{
						Scheme: scheme, Partition: part, Method: method, Procs: 4,
					})
					defer d.Close()
					c, st, err := spops.DistSpGEMM(d.Machine(), pl, bcrs)
					if err != nil {
						t.Fatal(err)
					}
					assertCRSEqual(t, c, want)
					if st.WireWords <= 0 {
						t.Fatalf("no traffic accounted: %+v", st)
					}
				})
			}
		}
	}
}

// TestDegradedOps runs SpMV, Jacobi and SpGEMM on a degraded
// distribution (rank killed, parts re-homed) and checks the oracles
// still hold.
func TestDegradedOps(t *testing.T) {
	n := 32
	g := sparse.Uniform(n, n, 0.12, 31).Clone()
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += math.Abs(g.At(i, j))
			}
		}
		g.Set(i, i, sum+1)
	}
	cfg := core.Config{Partition: "row", Procs: 4, Degrade: true, KillRank: 2,
		Retries: 2, RetryBackoff: 2 * time.Millisecond}
	d, pl := distribute(t, g, cfg)
	defer d.Close()
	if !d.Result.Degraded {
		t.Fatal("expected a degraded distribution")
	}

	x := randVec(n, 17)
	y, _, err := spops.SpMV(d.Machine(), pl, x)
	if err != nil {
		t.Fatal(err)
	}
	vecClose(t, y, denseMatVec(g, x), 1e-12, "degraded SpMV")

	b := randVec(n, 18)
	xs, st, err := spops.Jacobi(d.Machine(), pl, b, nil, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("degraded Jacobi did not converge")
	}
	vecClose(t, denseMatVec(g, xs), b, 1e-8, "degraded Jacobi A·x")

	gb := sparse.Uniform(n, 10, 0.2, 19)
	bcrs := compress.CompressCRS(gb, nil)
	want, err := ops.SpGEMM(compress.CompressCRS(g, nil), bcrs)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := spops.DistSpGEMM(d.Machine(), pl, bcrs)
	if err != nil {
		t.Fatal(err)
	}
	assertCRSEqual(t, c, want)
}

// TestPlanReuse executes the same plan several times on one machine
// (the server's cache pattern) and checks results stay correct.
func TestPlanReuse(t *testing.T) {
	g := sparse.Uniform(20, 20, 0.2, 41)
	d, pl := distribute(t, g, core.Config{Partition: "row", Procs: 4})
	defer d.Close()
	for it := 0; it < 3; it++ {
		x := randVec(20, int64(100+it))
		y, _, err := spops.SpMV(d.Machine(), pl, x)
		if err != nil {
			t.Fatal(err)
		}
		vecClose(t, y, denseMatVec(g, x), 1e-12, "reused plan SpMV")
	}
}

// TestSimnetRecordsOps checks that op traffic lands in the network
// timeline when a topology is attached.
func TestSimnetRecordsOps(t *testing.T) {
	g := sparse.Uniform(24, 24, 0.15, 51)
	d, pl := distribute(t, g, core.Config{Partition: "row", Procs: 4, Topology: "star"})
	defer d.Close()
	base := d.NetTimeline().Makespan
	x := randVec(24, 5)
	if _, _, err := spops.SpMV(d.Machine(), pl, x); err != nil {
		t.Fatal(err)
	}
	after := d.NetTimeline().Makespan
	if after <= base {
		t.Fatalf("SpMV traffic not recorded: makespan %v -> %v", base, after)
	}
}

// assertCRSEqual compares two CRS matrices element-wise via dense
// reconstruction (structural layouts may differ in explicit zeros).
func assertCRSEqual(t *testing.T, got, want *compress.CRS) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	gd := densify(got)
	wd := densify(want)
	for i := range gd {
		if math.Abs(gd[i]-wd[i]) > 1e-10*(1+math.Abs(wd[i])) {
			t.Fatalf("C[%d/%d] = %g, want %g", i/got.Cols, i%got.Cols, gd[i], wd[i])
		}
	}
}

func densify(c *compress.CRS) []float64 {
	d := make([]float64, c.Rows*c.Cols)
	for i := 0; i < c.Rows; i++ {
		for idx := c.RowPtr[i]; idx < c.RowPtr[i+1]; idx++ {
			d[i*c.Cols+c.ColIdx[idx]] += c.Val[idx]
		}
	}
	return d
}
