// Package spops is the sparsity-aware distributed compute layer: it
// turns a distributed sparse array (the output of internal/dist) into
// something you can repeatedly compute with, moving only the data the
// sparsity structure actually requires.
//
// The core object is the CommPlan, built once per distributed array.
// It derives, from each rank's local compressed arrays, the set of
// global x-indices that rank's nonzeros reference (the "needed-index
// set" of Eckstein & Mátyásfalvi, arXiv:1812.00904), inverts those
// sets into per-pair send lists, and precomputes every scatter/gather
// position the execution engine touches. Executing the plan is then a
// halo exchange: each x-owner sends each consumer exactly the owned
// values that consumer's nonzeros reference, point to point, instead
// of the root broadcasting the whole vector to everyone. Iterative
// solvers (Jacobi, Power) keep vector segments resident and reuse the
// plan every sweep, so per-iteration traffic is O(halo), not O(n·p).
//
// The same needed-index sets double as the row-fetch lists of the
// distributed SpGEMM (Hong et al., arXiv:2408.14558): the B-rows a
// rank must read to multiply its local A-nonzeros are exactly the
// x-indices those nonzeros reference.
//
// All plan execution traffic moves through machine.Proc.Send on tags
// drawn from machine.AllocTags, so it is charged to cost counters and
// recorded into the attached simnet recorder like distribution
// traffic. Plan construction itself is root-side preprocessing and is
// not charged, matching how the distribution schemes treat their own
// plan/packing metadata.
package spops

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/partition"
)

// CommPlan is the reusable communication plan for computing on one
// distributed array. It is a pure index structure: it holds no
// machine reference and allocates no tags, so it can be cached and
// executed on any machine of the right size (the server's machine
// pool reuses machines across jobs).
type CommPlan struct {
	// Part is the partition the array was distributed with.
	Part partition.Partition
	// Res is the distribution result whose local compressed arrays
	// the plan indexes (LocalCRS/LocalCCS/LocalJDS by part id).
	Res *dist.Result

	// Rows, Cols are the global array shape.
	Rows, Cols int
	// P is the machine size; parts and ranks coincide (part k lives
	// at rank k unless the run degraded and re-homed it).
	P int
	// IO is the rank that sources and sinks global vectors — the
	// first alive rank (rank 0 unless it died).
	IO int
	// Alive[r] reports whether rank r survived the distribution.
	Alive []bool

	// Host maps part k to the rank hosting its local arrays
	// (identity unless the degraded engine re-homed it).
	Host []int

	// Need[r] lists, ascending, the global columns rank r's hosted
	// nonzeros reference. This is the needed-index set: the only x
	// values rank r ever has to see.
	Need [][]int
	// SendIdx[s][r] lists, ascending, the global columns owned by
	// rank s that rank r needs (s != r): the halo send list for the
	// pair (s, r).
	SendIdx [][][]int
	// Contrib[r] lists, ascending, the global rows rank r produces
	// partial y-sums for.
	Contrib [][]int

	// Diag is the global diagonal when the array is square (needed by
	// Jacobi), nil otherwise.
	Diag []float64

	// Stats summarises the plan's traffic shape.
	Stats PlanStats

	// --- precomputed execution positions (see plan build) ---

	alive []int // alive ranks, ascending; alive[i] owns segment i
	xCut  []int // len(alive)+1 cuts over Cols
	yCut  []int // len(alive)+1 cuts over Rows
	xSeg  []int // rank -> its segment index in alive order, -1 if dead
	// recvPos[r][s][i] is the slot in rank r's need-value buffer for
	// SendIdx[s][r][i].
	recvPos [][][]int32
	// ownSrc/ownDst copy rank r's owned-and-needed x values into its
	// need-value buffer: needVal[ownDst[i]] = xSeg[ownSrc[i]].
	ownSrc [][]int32
	ownDst [][]int32
	// parts[k] maps part k's local indices into its host's buffers.
	parts []partComp
	// ySendPos[r][o][i] is the index into rank r's contribution
	// buffer of the value destined for row ySendRows[r][o][i].
	ySendRows [][][]int
	ySendPos  [][][]int32
	// selfSrc/selfDst accumulate rank r's contributions to rows it
	// owns itself: ySeg[selfDst[i]] += contribVal[selfSrc[i]].
	selfSrc [][]int32
	selfDst [][]int32
}

// partComp holds part k's precomputed index translations.
type partComp struct {
	host int
	// colNeed[lj] is the slot in the host's need-value buffer for
	// local column lj, or -1 when the column has no local support.
	colNeed []int32
	// rowOut[li] is the slot in the host's contribution buffer for
	// local row li, or -1 when the row has no local nonzeros.
	rowOut []int32
}

// PlanStats summarises the traffic a plan moves, in words (one word =
// one float64 element, the unit of the paper's T_Data accounting).
type PlanStats struct {
	// Ranks and AliveRanks are the machine size and survivor count.
	Ranks, AliveRanks int
	// HaloWords is the per-sweep halo payload: the total number of x
	// values exchanged point to point each time the plan executes.
	HaloWords int
	// HaloMsgs is the number of point-to-point halo messages per
	// sweep (pairs with a non-empty send list).
	HaloMsgs int
	// ScatterWords is the one-time cost of placing x segments at
	// their owners from the IO rank.
	ScatterWords int
	// YRouteWords is the per-sweep cost of routing partial y sums to
	// their row owners.
	YRouteWords int
	// GatherWords is the one-time cost of collecting the owned y
	// segments back at the IO rank.
	GatherWords int
	// BcastWords is the broadcast-equivalent per-sweep cost the halo
	// exchange replaces: Cols x values to each non-root alive rank.
	BcastWords int
	// MaxNeed and TotalNeed size the needed-index sets.
	MaxNeed, TotalNeed int
}

// BuildCommPlan derives the communication plan for one distributed
// array. part must be the partition res was produced with; res must
// hold one local array per part. Degraded results are supported: dead
// ranks are excluded from vector ownership and re-homed parts compute
// at their hosting rank.
func BuildCommPlan(part partition.Partition, res *dist.Result) (*CommPlan, error) {
	if part == nil || res == nil {
		return nil, fmt.Errorf("spops: BuildCommPlan: nil partition or result")
	}
	rows, cols := part.Shape()
	p := part.NumParts()
	arrays := res.PartArrays()
	if len(arrays) != p {
		return nil, fmt.Errorf("spops: BuildCommPlan: %d local arrays for %d parts", len(arrays), p)
	}

	pl := &CommPlan{
		Part: part, Res: res,
		Rows: rows, Cols: cols, P: p,
		Alive: make([]bool, p),
		Host:  make([]int, p),
	}
	dead := map[int]bool{}
	for _, r := range res.DeadRanks {
		dead[r] = true
	}
	for r := 0; r < p; r++ {
		pl.Alive[r] = !dead[r]
		if pl.Alive[r] {
			pl.alive = append(pl.alive, r)
		}
	}
	if len(pl.alive) == 0 {
		return nil, fmt.Errorf("spops: BuildCommPlan: no alive ranks")
	}
	pl.IO = pl.alive[0]
	for k := 0; k < p; k++ {
		pl.Host[k] = k
		if res.Reassigned != nil {
			if h, ok := res.Reassigned[k]; ok {
				pl.Host[k] = h
			}
		}
		if dead[pl.Host[k]] {
			return nil, fmt.Errorf("spops: BuildCommPlan: part %d hosted at dead rank %d", k, pl.Host[k])
		}
	}

	// Vector ownership: contiguous ceil-div blocks over the alive
	// ranks — x over columns, y over rows. For square arrays the two
	// cuts coincide, which is what lets Jacobi/Power feed y straight
	// back in as the next x without a remap.
	na := len(pl.alive)
	pl.xCut = blockCuts(cols, na)
	pl.yCut = blockCuts(rows, na)
	pl.xSeg = make([]int, p)
	for r := range pl.xSeg {
		pl.xSeg[r] = -1
	}
	for i, r := range pl.alive {
		pl.xSeg[r] = i
	}

	if err := pl.buildNeedSets(); err != nil {
		return nil, err
	}
	pl.buildHalo()
	if err := pl.buildContrib(); err != nil {
		return nil, err
	}
	if rows == cols {
		pl.buildDiag()
	}
	pl.buildStats()
	return pl, nil
}

// blockCuts returns n split into p ceil-div blocks: cut[i]..cut[i+1]
// is block i, matching the partition package's block convention.
func blockCuts(n, p int) []int {
	b := (n + p - 1) / p
	cuts := make([]int, p+1)
	for i := 1; i <= p; i++ {
		c := i * b
		if c > n {
			c = n
		}
		cuts[i] = c
	}
	return cuts
}

// xOwner returns the alive rank owning global column j.
func (pl *CommPlan) xOwner(j int) int {
	return pl.alive[searchCuts(pl.xCut, j)]
}

// yOwner returns the alive rank owning global row i.
func (pl *CommPlan) yOwner(i int) int {
	return pl.alive[searchCuts(pl.yCut, i)]
}

// searchCuts returns the block index of position j in cuts.
func searchCuts(cuts []int, j int) int {
	// sort.SearchInts over cut starts: find the last cut <= j.
	i := sort.SearchInts(cuts, j+1) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(cuts)-1 {
		i = len(cuts) - 2
	}
	return i
}

// xRange / yRange return rank r's owned spans ([0,0) for dead ranks).
func (pl *CommPlan) xRange(r int) (int, int) {
	s := pl.xSeg[r]
	if s < 0 {
		return 0, 0
	}
	return pl.xCut[s], pl.xCut[s+1]
}

func (pl *CommPlan) yRange(r int) (int, int) {
	s := pl.xSeg[r]
	if s < 0 {
		return 0, 0
	}
	return pl.yCut[s], pl.yCut[s+1]
}

// buildNeedSets computes Need[r] from the local compressed arrays'
// column support, plus the per-part colNeed position maps.
func (pl *CommPlan) buildNeedSets() error {
	pl.Need = make([][]int, pl.P)
	pl.parts = make([]partComp, pl.P)
	// Transient per-rank mask over global columns.
	masks := make([][]bool, pl.P)
	for k := 0; k < pl.P; k++ {
		h := pl.Host[k]
		if masks[h] == nil {
			masks[h] = make([]bool, pl.Cols)
		}
		colMap := pl.Part.ColMap(k)
		sup, err := colSupport(pl.Res, k, len(colMap))
		if err != nil {
			return err
		}
		for lj, has := range sup {
			if has {
				masks[h][colMap[lj]] = true
			}
		}
	}
	for r := 0; r < pl.P; r++ {
		if masks[r] == nil {
			continue
		}
		for j, has := range masks[r] {
			if has {
				pl.Need[r] = append(pl.Need[r], j)
			}
		}
	}
	// Positions of each global column within its rank's need list.
	needPos := make([][]int32, pl.P)
	for r := 0; r < pl.P; r++ {
		if len(pl.Need[r]) == 0 {
			continue
		}
		needPos[r] = make([]int32, pl.Cols)
		for i := range needPos[r] {
			needPos[r][i] = -1
		}
		for i, j := range pl.Need[r] {
			needPos[r][j] = int32(i)
		}
	}
	for k := 0; k < pl.P; k++ {
		h := pl.Host[k]
		colMap := pl.Part.ColMap(k)
		cn := make([]int32, len(colMap))
		for lj, j := range colMap {
			cn[lj] = -1
			if needPos[h] != nil {
				cn[lj] = needPos[h][j]
			}
		}
		pl.parts[k].host = h
		pl.parts[k].colNeed = cn
	}
	return nil
}

// buildHalo inverts the need sets into per-pair send lists and bakes
// the receiver-side fill positions.
func (pl *CommPlan) buildHalo() {
	pl.SendIdx = make([][][]int, pl.P)
	pl.recvPos = make([][][]int32, pl.P)
	pl.ownSrc = make([][]int32, pl.P)
	pl.ownDst = make([][]int32, pl.P)
	for s := 0; s < pl.P; s++ {
		pl.SendIdx[s] = make([][]int, pl.P)
	}
	for r := 0; r < pl.P; r++ {
		pl.recvPos[r] = make([][]int32, pl.P)
		lo, hi := pl.xRange(r)
		for i, j := range pl.Need[r] {
			if j >= lo && j < hi {
				pl.ownSrc[r] = append(pl.ownSrc[r], int32(j-lo))
				pl.ownDst[r] = append(pl.ownDst[r], int32(i))
				continue
			}
			o := pl.xOwner(j)
			pl.SendIdx[o][r] = append(pl.SendIdx[o][r], j)
			pl.recvPos[r][o] = append(pl.recvPos[r][o], int32(i))
		}
	}
}

// buildContrib computes the rows each rank produces partial sums for,
// the per-part rowOut maps, and the y routing lists.
func (pl *CommPlan) buildContrib() error {
	masks := make([][]bool, pl.P)
	for k := 0; k < pl.P; k++ {
		h := pl.Host[k]
		if masks[h] == nil {
			masks[h] = make([]bool, pl.Rows)
		}
		rowMap := pl.Part.RowMap(k)
		sup, err := rowSupport(pl.Res, k, len(rowMap))
		if err != nil {
			return err
		}
		for li, has := range sup {
			if has {
				masks[h][rowMap[li]] = true
			}
		}
	}
	pl.Contrib = make([][]int, pl.P)
	contribPos := make([][]int32, pl.P)
	for r := 0; r < pl.P; r++ {
		if masks[r] == nil {
			continue
		}
		for i, has := range masks[r] {
			if has {
				pl.Contrib[r] = append(pl.Contrib[r], i)
			}
		}
		if len(pl.Contrib[r]) > 0 {
			contribPos[r] = make([]int32, pl.Rows)
			for i := range contribPos[r] {
				contribPos[r][i] = -1
			}
			for i, g := range pl.Contrib[r] {
				contribPos[r][g] = int32(i)
			}
		}
	}
	for k := 0; k < pl.P; k++ {
		h := pl.Host[k]
		rowMap := pl.Part.RowMap(k)
		ro := make([]int32, len(rowMap))
		for li, g := range rowMap {
			ro[li] = -1
			if contribPos[h] != nil {
				ro[li] = contribPos[h][g]
			}
		}
		pl.parts[k].rowOut = ro
	}
	// Route each contributed row to its owner.
	pl.ySendRows = make([][][]int, pl.P)
	pl.ySendPos = make([][][]int32, pl.P)
	pl.selfSrc = make([][]int32, pl.P)
	pl.selfDst = make([][]int32, pl.P)
	for r := 0; r < pl.P; r++ {
		pl.ySendRows[r] = make([][]int, pl.P)
		pl.ySendPos[r] = make([][]int32, pl.P)
		lo, _ := pl.yRange(r)
		for i, g := range pl.Contrib[r] {
			o := pl.yOwner(g)
			if o == r {
				pl.selfSrc[r] = append(pl.selfSrc[r], int32(i))
				pl.selfDst[r] = append(pl.selfDst[r], int32(g-lo))
				continue
			}
			pl.ySendRows[r][o] = append(pl.ySendRows[r][o], g)
			pl.ySendPos[r][o] = append(pl.ySendPos[r][o], int32(i))
		}
	}
	return nil
}

// buildDiag extracts the global diagonal from the local arrays.
func (pl *CommPlan) buildDiag() {
	pl.Diag = make([]float64, pl.Rows)
	for k := 0; k < pl.P; k++ {
		rowMap := pl.Part.RowMap(k)
		colMap := pl.Part.ColMap(k)
		forEachNZ(pl.Res, k, func(li, lj int, v float64) {
			if rowMap[li] == colMap[lj] {
				pl.Diag[rowMap[li]] = v
			}
		})
	}
}

// buildStats fills the traffic summary.
func (pl *CommPlan) buildStats() {
	st := &pl.Stats
	st.Ranks = pl.P
	st.AliveRanks = len(pl.alive)
	for s := 0; s < pl.P; s++ {
		for r := 0; r < pl.P; r++ {
			if n := len(pl.SendIdx[s][r]); n > 0 {
				st.HaloWords += n
				st.HaloMsgs++
			}
		}
	}
	for _, r := range pl.alive {
		if r == pl.IO {
			continue
		}
		lo, hi := pl.xRange(r)
		st.ScatterWords += hi - lo
		ylo, yhi := pl.yRange(r)
		st.GatherWords += yhi - ylo
	}
	for r := 0; r < pl.P; r++ {
		for o := 0; o < pl.P; o++ {
			st.YRouteWords += len(pl.ySendRows[r][o])
		}
	}
	st.BcastWords = pl.Cols * (len(pl.alive) - 1)
	for r := 0; r < pl.P; r++ {
		if n := len(pl.Need[r]); n > 0 {
			st.TotalNeed += n
			if n > st.MaxNeed {
				st.MaxNeed = n
			}
		}
	}
}
