package spops

import (
	"fmt"
	"sort"

	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/machine"
)

// bEntry is one stored nonzero of a fetched B row.
type bEntry struct {
	col int
	val float64
}

// triplet is the wire unit of the SpGEMM exchange: (row, col, value)
// packed as three float64 words, the ED scheme's buffer layout
// applied to computation traffic.
type triplet struct {
	row, col int
	val      float64
}

// packTriplets flattens triplets into a wire buffer.
func packTriplets(ts []triplet) []float64 {
	buf := make([]float64, 0, 3*len(ts))
	for _, t := range ts {
		buf = append(buf, float64(t.row), float64(t.col), t.val)
	}
	return buf
}

// unpackTriplets parses a wire buffer back into triplets.
func unpackTriplets(buf []float64) ([]triplet, error) {
	if len(buf)%3 != 0 {
		return nil, fmt.Errorf("spops: triplet buffer of %d words", len(buf))
	}
	ts := make([]triplet, 0, len(buf)/3)
	for i := 0; i < len(buf); i += 3 {
		ts = append(ts, triplet{row: int(buf[i]), col: int(buf[i+1]), val: buf[i+2]})
	}
	return ts, nil
}

// DistSpGEMM computes C = A·B where A is the plan's distributed array
// and B is a global CRS at the IO rank with B.Rows == A.Cols. B's
// rows are block-scattered to the x-owners once, then each rank
// fetches — as triplet buffers, point to point — exactly the B-rows
// its local A-nonzeros reference: the plan's needed-index sets are
// the fetch lists, because the columns A touches are the rows of B
// the product reads (Gustavson's identity). Each rank multiplies its
// hosted parts with Gustavson's row-merge locally and ships its C
// triplets back to the IO rank, which merges duplicates (col- and
// mesh-partitioned parts produce partial sums for the same output
// entry) into the returned CRS.
func DistSpGEMM(m *machine.Machine, pl *CommPlan, b *compress.CRS) (*compress.CRS, OpStats, error) {
	if b == nil {
		return nil, OpStats{}, fmt.Errorf("spops: DistSpGEMM: nil B")
	}
	if b.Rows != pl.Cols {
		return nil, OpStats{}, fmt.Errorf("spops: DistSpGEMM: A is %dx%d but B has %d rows",
			pl.Rows, pl.Cols, b.Rows)
	}
	e := newExec(m, pl)
	var c *compress.CRS
	err := e.run(func(pr *machine.Proc) error {
		st := e.st[pr.Rank]
		// Phase 1: block-scatter B's rows to the x-owners (owner of
		// column j of A owns row j of B).
		block, err := e.scatterB(pr, b)
		if err != nil {
			return err
		}
		// Phase 2: row-fetch exchange along the plan's halo pairs.
		rows, err := e.fetchB(pr, block)
		if err != nil {
			return err
		}
		// Phase 3: local Gustavson over the hosted parts.
		cts := e.localGustavson(pr.Rank, rows)
		// Phase 4: C triplets to the IO rank; merge.
		if pr.Rank != pl.IO {
			return pr.Send(pl.IO, e.tag(tagGather), [4]int64{int64(len(cts))},
				packTriplets(cts), &st.wire)
		}
		all := cts
		for _, r := range pl.alive {
			if r == pl.IO {
				continue
			}
			msg, err := pr.RecvFrom(r, e.tag(tagGather))
			if err != nil {
				return fmt.Errorf("spops: gather C from %d: %w", r, err)
			}
			ts, err := unpackTriplets(msg.Data)
			if err != nil {
				return err
			}
			all = append(all, ts...)
		}
		c = mergeTriplets(all, pl.Rows, b.Cols)
		return nil
	})
	if err != nil {
		return nil, OpStats{}, err
	}
	stats := e.stats("spgemm", 1)
	// The broadcast-equivalent for SpGEMM ships all of B (as
	// triplets) to every non-root rank, the ops.DistributedSpMM
	// pattern.
	stats.BcastWords = 3 * b.NNZ() * (len(pl.alive) - 1)
	return c, stats, nil
}

// scatterB ships each x-owner its block of B rows as triplets and
// returns this rank's block indexed by global row.
func (e *exec) scatterB(pr *machine.Proc, b *compress.CRS) (map[int][]bEntry, error) {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank == pl.IO {
		for _, r := range pl.alive {
			lo, hi := pl.xRange(r)
			if r == pl.IO || hi-lo == 0 {
				continue
			}
			var ts []triplet
			for g := lo; g < hi; g++ {
				for idx := b.RowPtr[g]; idx < b.RowPtr[g+1]; idx++ {
					ts = append(ts, triplet{row: g, col: b.ColIdx[idx], val: b.Val[idx]})
				}
			}
			if err := pr.Send(r, e.tag(tagScatter), [4]int64{int64(len(ts))},
				packTriplets(ts), &st.wire); err != nil {
				return nil, fmt.Errorf("spops: scatter B to %d: %w", r, err)
			}
		}
		block := map[int][]bEntry{}
		for g := st.xlo; g < st.xhi; g++ {
			for idx := b.RowPtr[g]; idx < b.RowPtr[g+1]; idx++ {
				block[g] = append(block[g], bEntry{col: b.ColIdx[idx], val: b.Val[idx]})
			}
		}
		return block, nil
	}
	block := map[int][]bEntry{}
	if st.xhi-st.xlo == 0 {
		return block, nil
	}
	msg, err := pr.RecvFrom(pl.IO, e.tag(tagScatter))
	if err != nil {
		return nil, fmt.Errorf("spops: rank %d scatter B recv: %w", pr.Rank, err)
	}
	ts, err := unpackTriplets(msg.Data)
	if err != nil {
		return nil, err
	}
	for _, t := range ts {
		block[t.row] = append(block[t.row], bEntry{col: t.col, val: t.val})
	}
	return block, nil
}

// fetchB runs the row-fetch exchange: each B-block owner ships each
// consumer the rows on their halo send list, and every rank returns
// the union of its own block rows and the fetched rows, indexed by
// global B-row. Rows with no stored entries travel as zero triplets
// of nothing — they are simply absent, which Gustavson handles.
func (e *exec) fetchB(pr *machine.Proc, block map[int][]bEntry) (map[int][]bEntry, error) {
	pl, st := e.pl, e.st[pr.Rank]
	me := pr.Rank
	for _, r := range pl.alive {
		idx := pl.SendIdx[me][r]
		if len(idx) == 0 || r == me {
			continue
		}
		var ts []triplet
		for _, g := range idx {
			for _, en := range block[g] {
				ts = append(ts, triplet{row: g, col: en.col, val: en.val})
			}
		}
		if err := pr.Send(r, e.tag(tagFetch), [4]int64{int64(len(ts))},
			packTriplets(ts), &st.wire); err != nil {
			return nil, fmt.Errorf("spops: B fetch %d->%d: %w", me, r, err)
		}
	}
	rows := map[int][]bEntry{}
	// Own needed rows straight from the block.
	lo, hi := st.xlo, st.xhi
	for _, g := range pl.Need[me] {
		if g >= lo && g < hi {
			rows[g] = block[g]
		}
	}
	for _, s := range pl.alive {
		if len(pl.SendIdx[s][me]) == 0 || s == me {
			continue
		}
		msg, err := pr.RecvFrom(s, e.tag(tagFetch))
		if err != nil {
			return nil, fmt.Errorf("spops: B fetch recv %d<-%d: %w", me, s, err)
		}
		ts, err := unpackTriplets(msg.Data)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			rows[t.row] = append(rows[t.row], bEntry{col: t.col, val: t.val})
		}
	}
	return rows, nil
}

// localGustavson multiplies every part hosted at rank r against the
// fetched B rows, producing C triplets with global indices. Each
// A-nonzero (i,j) merges B's row j scaled by a_ij into C's row i.
func (e *exec) localGustavson(r int, rows map[int][]bEntry) []triplet {
	pl, st := e.pl, e.st[r]
	var delta cost.Counter
	acc := map[int]map[int]float64{}
	for k := 0; k < pl.P; k++ {
		if pl.Host[k] != r {
			continue
		}
		rowMap := pl.Part.RowMap(k)
		colMap := pl.Part.ColMap(k)
		forEachNZ(pl.Res, k, func(li, lj int, av float64) {
			gi, gj := rowMap[li], colMap[lj]
			brow := rows[gj]
			if len(brow) == 0 {
				return
			}
			m := acc[gi]
			if m == nil {
				m = map[int]float64{}
				acc[gi] = m
			}
			for _, en := range brow {
				m[en.col] += av * en.val
			}
			delta.AddOps(2 * len(brow))
		})
	}
	var ts []triplet
	for gi, m := range acc {
		for gc, v := range m {
			ts = append(ts, triplet{row: gi, col: gc, val: v})
		}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].row != ts[b].row {
			return ts[a].row < ts[b].row
		}
		return ts[a].col < ts[b].col
	})
	e.chargeComp(st, delta)
	return ts
}

// mergeTriplets sums duplicate (row, col) entries — partial products
// from col/mesh-partitioned parts — and builds the global CRS.
func mergeTriplets(ts []triplet, rows, cols int) *compress.CRS {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].row != ts[b].row {
			return ts[a].row < ts[b].row
		}
		return ts[a].col < ts[b].col
	})
	c := &compress.CRS{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(ts); {
		j := i + 1
		v := ts[i].val
		for j < len(ts) && ts[j].row == ts[i].row && ts[j].col == ts[i].col {
			v += ts[j].val
			j++
		}
		if v != 0 {
			c.ColIdx = append(c.ColIdx, ts[i].col)
			c.Val = append(c.Val, v)
			c.RowPtr[ts[i].row+1]++
		}
		i = j
	}
	for i := 0; i < rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	return c
}
