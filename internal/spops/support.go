package spops

import (
	"fmt"

	"repro/internal/dist"
)

// colSupport returns, for part k of res, a mask over local columns
// marking those with at least one stored nonzero — the column support
// that seeds the needed-index sets.
func colSupport(res *dist.Result, k, nCols int) ([]bool, error) {
	sup := make([]bool, nCols)
	switch res.Method {
	case dist.CRS:
		a := res.LocalCRS[k]
		for _, j := range a.ColIdx {
			sup[j] = true
		}
	case dist.CCS:
		a := res.LocalCCS[k]
		for j := 0; j < a.Cols; j++ {
			if a.ColPtr[j+1] > a.ColPtr[j] {
				sup[j] = true
			}
		}
	case dist.JDS:
		a := res.LocalJDS[k]
		for _, j := range a.ColIdx {
			sup[j] = true
		}
	default:
		return nil, fmt.Errorf("spops: unsupported method %v", res.Method)
	}
	return sup, nil
}

// rowSupport returns, for part k of res, a mask over local rows
// marking those with at least one stored nonzero.
func rowSupport(res *dist.Result, k, nRows int) ([]bool, error) {
	sup := make([]bool, nRows)
	switch res.Method {
	case dist.CRS:
		a := res.LocalCRS[k]
		for i := 0; i < a.Rows; i++ {
			if a.RowPtr[i+1] > a.RowPtr[i] {
				sup[i] = true
			}
		}
	case dist.CCS:
		a := res.LocalCCS[k]
		for _, i := range a.RowIdx {
			sup[i] = true
		}
	case dist.JDS:
		a := res.LocalJDS[k]
		for d := 0; d < a.MaxRowNNZ(); d++ {
			for t := a.JDPtr[d]; t < a.JDPtr[d+1]; t++ {
				sup[a.Perm[t-a.JDPtr[d]]] = true
			}
		}
	default:
		return nil, fmt.Errorf("spops: unsupported method %v", res.Method)
	}
	return sup, nil
}

// forEachNZ visits every stored nonzero of part k as (localRow,
// localCol, value), in the storage order of the part's format.
func forEachNZ(res *dist.Result, k int, fn func(li, lj int, v float64)) {
	switch res.Method {
	case dist.CRS:
		a := res.LocalCRS[k]
		for i := 0; i < a.Rows; i++ {
			for idx := a.RowPtr[i]; idx < a.RowPtr[i+1]; idx++ {
				fn(i, a.ColIdx[idx], a.Val[idx])
			}
		}
	case dist.CCS:
		a := res.LocalCCS[k]
		for j := 0; j < a.Cols; j++ {
			for idx := a.ColPtr[j]; idx < a.ColPtr[j+1]; idx++ {
				fn(a.RowIdx[idx], j, a.Val[idx])
			}
		}
	case dist.JDS:
		a := res.LocalJDS[k]
		for d := 0; d < a.MaxRowNNZ(); d++ {
			for t := a.JDPtr[d]; t < a.JDPtr[d+1]; t++ {
				fn(a.Perm[t-a.JDPtr[d]], a.ColIdx[t], a.Val[t])
			}
		}
	}
}
