package spops

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/simnet"
)

// Tag offsets within the range a plan execution allocates via
// machine.AllocTags. All plan traffic rides tags >= 0, so it is
// charged to cost counters and recorded into the simnet recorder
// exactly like distribution traffic.
const (
	tagScatter = iota // IO -> owners: x (or b, or B-block) segments
	tagHalo           // owner -> consumer: needed x values
	tagYRoute         // contributor -> owner: partial y sums
	tagGather         // owner -> IO: owned y segments / C triplets
	tagRedUp          // alive rank -> IO: scalar reduction operands
	tagRedDown        // IO -> alive rank: reduced scalars
	tagFetch          // B-row owner -> consumer: fetched triplets
	tagCount
)

// OpStats reports what one plan execution moved and did.
type OpStats struct {
	// Op names the operation ("spmv", "spgemm", "jacobi", "power").
	Op string
	// Iterations is the number of sweeps an iterative solver ran (1
	// for one-shot SpMV / SpGEMM).
	Iterations int
	// Converged reports whether an iterative solver met its
	// tolerance before hitting the iteration cap.
	Converged bool
	// Messages and WireWords are the charged point-to-point traffic
	// actually moved, summed over ranks.
	Messages, WireWords int
	// HaloWords is the plan's per-sweep halo payload.
	HaloWords int
	// BcastWords is the per-sweep broadcast-equivalent payload the
	// halo exchange replaced (Cols values to each non-root rank).
	BcastWords int
	// Ops counts local floating-point work, in the paper's
	// element-operation unit.
	Ops int
}

// rankState is one rank's execution-time scratch. Buffers are sized
// from the plan once and reused across iterations.
type rankState struct {
	rank       int
	xlo, xhi   int
	ylo, yhi   int
	xSeg       []float64 // resident owned x values
	ySeg       []float64 // owned y accumulation
	needVal    []float64 // x values this rank's nonzeros reference
	contribVal []float64 // partial sums for contributed rows
	wire       cost.Counter
	comp       cost.Counter
}

// exec binds a plan to one machine run: allocated tags plus per-rank
// state and counters.
type exec struct {
	pl   *CommPlan
	m    *machine.Machine
	base int
	st   []*rankState
}

func newExec(m *machine.Machine, pl *CommPlan) *exec {
	e := &exec{pl: pl, m: m, base: m.AllocTags(tagCount), st: make([]*rankState, pl.P)}
	for _, r := range pl.alive {
		st := &rankState{rank: r}
		st.xlo, st.xhi = pl.xRange(r)
		st.ylo, st.yhi = pl.yRange(r)
		st.xSeg = make([]float64, st.xhi-st.xlo)
		st.ySeg = make([]float64, st.yhi-st.ylo)
		st.needVal = make([]float64, len(pl.Need[r]))
		st.contribVal = make([]float64, len(pl.Contrib[r]))
		e.st[r] = st
	}
	return e
}

// tag returns the wire tag for a phase offset.
func (e *exec) tag(off int) int { return e.base + off }

// chargeComp flushes a rank's accumulated compute into the simnet
// recorder (compute spans appear on the timeline next to the wire
// occupancy its messages produced).
func (e *exec) chargeComp(st *rankState, delta cost.Counter) {
	st.comp.Add(delta)
	if net := e.m.Network(); net != nil {
		net.Charge(st.rank, simnet.ClassRankComp, delta)
	}
}

// scatterX places x's owned segments at their owners from the IO
// rank: the one-time setup the halo exchange then amortises.
func (e *exec) scatterX(pr *machine.Proc, x []float64) error {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank == pl.IO {
		for _, r := range pl.alive {
			lo, hi := pl.xRange(r)
			if r == pl.IO {
				copy(st.xSeg, x[lo:hi])
				continue
			}
			if hi-lo == 0 {
				continue
			}
			if err := pr.Send(r, e.tag(tagScatter), [4]int64{int64(lo)}, x[lo:hi], &st.wire); err != nil {
				return fmt.Errorf("spops: scatter x to %d: %w", r, err)
			}
		}
		return nil
	}
	if st.xhi-st.xlo == 0 {
		return nil
	}
	msg, err := pr.RecvFrom(pl.IO, e.tag(tagScatter))
	if err != nil {
		return fmt.Errorf("spops: rank %d scatter recv: %w", pr.Rank, err)
	}
	copy(st.xSeg, msg.Data)
	return nil
}

// halo runs one halo exchange: every x-owner sends each consumer the
// owned values that consumer's nonzeros reference, and each rank
// assembles its need-value buffer from its own segment plus the
// received payloads.
func (e *exec) halo(pr *machine.Proc) error {
	pl, st := e.pl, e.st[pr.Rank]
	me := pr.Rank
	// Own values first (no wire).
	for i, src := range pl.ownSrc[me] {
		st.needVal[pl.ownDst[me][i]] = st.xSeg[src]
	}
	// Sends: pack owned values for each consumer.
	for _, r := range pl.alive {
		idx := pl.SendIdx[me][r]
		if len(idx) == 0 || r == me {
			continue
		}
		buf := make([]float64, len(idx))
		for i, j := range idx {
			buf[i] = st.xSeg[j-st.xlo]
		}
		if err := pr.Send(r, e.tag(tagHalo), [4]int64{int64(len(idx))}, buf, &st.wire); err != nil {
			return fmt.Errorf("spops: halo send %d->%d: %w", me, r, err)
		}
	}
	// Receives: exactly the senders the plan says will ship to us.
	for _, s := range pl.alive {
		pos := pl.recvPos[me][s]
		if len(pos) == 0 || s == me {
			continue
		}
		msg, err := pr.RecvFrom(s, e.tag(tagHalo))
		if err != nil {
			return fmt.Errorf("spops: halo recv %d<-%d: %w", me, s, err)
		}
		if len(msg.Data) != len(pos) {
			return fmt.Errorf("spops: halo %d<-%d: %d values, want %d", me, s, len(msg.Data), len(pos))
		}
		for i, p := range pos {
			st.needVal[p] = msg.Data[i]
		}
	}
	return nil
}

// compute runs the local multiply for every part hosted at this rank,
// accumulating partial row sums into contribVal.
func (e *exec) compute(pr *machine.Proc) {
	pl, st := e.pl, e.st[pr.Rank]
	for i := range st.contribVal {
		st.contribVal[i] = 0
	}
	var delta cost.Counter
	for k := 0; k < pl.P; k++ {
		if pl.Host[k] != pr.Rank {
			continue
		}
		e.computePart(k, st, &delta)
	}
	e.chargeComp(st, delta)
}

// computePart multiplies part k against the assembled need values in
// its format's natural storage order.
func (e *exec) computePart(k int, st *rankState, ctr *cost.Counter) {
	pl := e.pl
	pc := &pl.parts[k]
	switch pl.Res.Method {
	case dist.CRS:
		a := pl.Res.LocalCRS[k]
		for i := 0; i < a.Rows; i++ {
			out := pc.rowOut[i]
			if out < 0 {
				continue
			}
			sum := 0.0
			for idx := a.RowPtr[i]; idx < a.RowPtr[i+1]; idx++ {
				sum += a.Val[idx] * st.needVal[pc.colNeed[a.ColIdx[idx]]]
			}
			st.contribVal[out] += sum
			ctr.AddOps(2 * (a.RowPtr[i+1] - a.RowPtr[i]))
		}
	case dist.CCS:
		a := pl.Res.LocalCCS[k]
		for j := 0; j < a.Cols; j++ {
			if a.ColPtr[j+1] == a.ColPtr[j] {
				continue
			}
			xv := st.needVal[pc.colNeed[j]]
			for idx := a.ColPtr[j]; idx < a.ColPtr[j+1]; idx++ {
				st.contribVal[pc.rowOut[a.RowIdx[idx]]] += a.Val[idx] * xv
			}
			ctr.AddOps(2 * (a.ColPtr[j+1] - a.ColPtr[j]))
		}
	case dist.JDS:
		a := pl.Res.LocalJDS[k]
		for d := 0; d < a.MaxRowNNZ(); d++ {
			for t := a.JDPtr[d]; t < a.JDPtr[d+1]; t++ {
				li := a.Perm[t-a.JDPtr[d]]
				st.contribVal[pc.rowOut[li]] += a.Val[t] * st.needVal[pc.colNeed[a.ColIdx[t]]]
			}
			ctr.AddOps(2 * (a.JDPtr[d+1] - a.JDPtr[d]))
		}
	}
}

// yRoute ships each rank's partial sums to the rows' owners and
// accumulates the owned y segment.
func (e *exec) yRoute(pr *machine.Proc) error {
	pl, st := e.pl, e.st[pr.Rank]
	me := pr.Rank
	for i := range st.ySeg {
		st.ySeg[i] = 0
	}
	// Own contributions.
	for i, src := range pl.selfSrc[me] {
		st.ySeg[pl.selfDst[me][i]] += st.contribVal[src]
	}
	// Sends to other owners.
	for _, o := range pl.alive {
		pos := pl.ySendPos[me][o]
		if len(pos) == 0 || o == me {
			continue
		}
		buf := make([]float64, len(pos))
		for i, p := range pos {
			buf[i] = st.contribVal[p]
		}
		if err := pr.Send(o, e.tag(tagYRoute), [4]int64{int64(len(pos))}, buf, &st.wire); err != nil {
			return fmt.Errorf("spops: y route %d->%d: %w", me, o, err)
		}
	}
	// Receives from contributing ranks.
	for _, r := range pl.alive {
		rows := pl.ySendRows[r][me]
		if len(rows) == 0 || r == me {
			continue
		}
		msg, err := pr.RecvFrom(r, e.tag(tagYRoute))
		if err != nil {
			return fmt.Errorf("spops: y route recv %d<-%d: %w", me, r, err)
		}
		if len(msg.Data) != len(rows) {
			return fmt.Errorf("spops: y route %d<-%d: %d values, want %d", me, r, len(msg.Data), len(rows))
		}
		for i, g := range rows {
			st.ySeg[g-st.ylo] += msg.Data[i]
		}
	}
	return nil
}

// gatherY collects the owned y segments at the IO rank into y.
func (e *exec) gatherY(pr *machine.Proc, y []float64) error {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank != pl.IO {
		if st.yhi-st.ylo == 0 {
			return nil
		}
		return pr.Send(pl.IO, e.tag(tagGather), [4]int64{int64(st.ylo)}, st.ySeg, &st.wire)
	}
	copy(y[st.ylo:st.yhi], st.ySeg)
	for _, r := range pl.alive {
		lo, hi := pl.yRange(r)
		if r == pl.IO || hi-lo == 0 {
			continue
		}
		msg, err := pr.RecvFrom(r, e.tag(tagGather))
		if err != nil {
			return fmt.Errorf("spops: gather y from %d: %w", r, err)
		}
		copy(y[lo:hi], msg.Data)
	}
	return nil
}

// allreduce folds each alive rank's operand vector with op at the IO
// rank and redistributes the result — a tiny point-to-point reduction
// on plan tags, so it works on degraded machines where the built-in
// collectives would wait on dead ranks.
func (e *exec) allreduce(pr *machine.Proc, vals []float64, op func(acc, in []float64)) ([]float64, error) {
	pl, st := e.pl, e.st[pr.Rank]
	if pr.Rank != pl.IO {
		if err := pr.Send(pl.IO, e.tag(tagRedUp), [4]int64{}, vals, &st.wire); err != nil {
			return nil, err
		}
		msg, err := pr.RecvFrom(pl.IO, e.tag(tagRedDown))
		if err != nil {
			return nil, err
		}
		return msg.Data, nil
	}
	acc := append([]float64(nil), vals...)
	for _, r := range pl.alive {
		if r == pl.IO {
			continue
		}
		msg, err := pr.RecvFrom(r, e.tag(tagRedUp))
		if err != nil {
			return nil, err
		}
		if len(msg.Data) != len(acc) {
			return nil, fmt.Errorf("spops: allreduce: rank %d sent %d values, want %d", r, len(msg.Data), len(acc))
		}
		op(acc, msg.Data)
	}
	for _, r := range pl.alive {
		if r == pl.IO {
			continue
		}
		if err := pr.Send(r, e.tag(tagRedDown), [4]int64{}, acc, &st.wire); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// run executes fn as an SPMD region over the plan's alive ranks; dead
// ranks return immediately.
func (e *exec) run(fn func(pr *machine.Proc) error) error {
	return e.m.Run(func(pr *machine.Proc) error {
		if !e.pl.Alive[pr.Rank] {
			return nil
		}
		return fn(pr)
	})
}

// stats sums the per-rank counters into an OpStats.
func (e *exec) stats(op string, iters int) OpStats {
	out := OpStats{Op: op, Iterations: iters,
		HaloWords: e.pl.Stats.HaloWords, BcastWords: e.pl.Stats.BcastWords}
	for _, st := range e.st {
		if st == nil {
			continue
		}
		out.Messages += int(st.wire.Messages)
		out.WireWords += int(st.wire.Elements)
		out.Ops += int(st.comp.Ops)
	}
	return out
}

// SpMV computes y = A·x for the plan's distributed array: x is
// scattered from the IO rank to its block owners, one halo exchange
// assembles each rank's needed values, every rank multiplies its
// hosted parts locally, partial sums are routed to the row owners,
// and the owned y segments are gathered back. Total traffic is
// O(n + halo) instead of the broadcast path's O(n·p).
func SpMV(m *machine.Machine, pl *CommPlan, x []float64) ([]float64, OpStats, error) {
	if len(x) != pl.Cols {
		return nil, OpStats{}, fmt.Errorf("spops: SpMV: x has %d entries, want %d", len(x), pl.Cols)
	}
	e := newExec(m, pl)
	y := make([]float64, pl.Rows)
	err := e.run(func(pr *machine.Proc) error {
		if err := e.scatterX(pr, x); err != nil {
			return err
		}
		if err := e.halo(pr); err != nil {
			return err
		}
		e.compute(pr)
		if err := e.yRoute(pr); err != nil {
			return err
		}
		return e.gatherY(pr, y)
	})
	if err != nil {
		return nil, OpStats{}, err
	}
	return y, e.stats("spmv", 1), nil
}
