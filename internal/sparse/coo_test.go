package sparse

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestCOOAddIgnoresZero(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 0)
	c.Add(1, 1, 5)
	if c.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (explicit zero must be dropped)", c.NNZ())
	}
}

func TestCOOAddOutOfRange(t *testing.T) {
	c := NewCOO(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	c.Add(2, 0, 1)
}

func TestCOORoundTripDense(t *testing.T) {
	d := PaperFigure1()
	c := FromDense(d)
	if c.NNZ() != 16 {
		t.Fatalf("NNZ = %d, want 16", c.NNZ())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.ToDense().Equal(d) {
		t.Error("COO -> Dense round trip lost data")
	}
}

func TestCOORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := Uniform(11, 9, 0.25, seed)
		return FromDense(d).ToDense().Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDenseRowMajorOrder(t *testing.T) {
	d := PaperFigure1()
	c := FromDense(d)
	if !sort.SliceIsSorted(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	}) {
		t.Error("FromDense entries not in row-major order")
	}
}

func TestSortColMajor(t *testing.T) {
	c := FromDense(PaperFigure1())
	c.SortColMajor()
	if !sort.SliceIsSorted(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Col != eb.Col {
			return ea.Col < eb.Col
		}
		return ea.Row < eb.Row
	}) {
		t.Error("SortColMajor did not order entries column-major")
	}
	// Column-major order of Figure 1: first entries are column 0 rows 2, 9.
	if c.Entries[0].Val != 3 || c.Entries[1].Val != 14 {
		t.Errorf("first column entries = %g, %g; want 3, 14", c.Entries[0].Val, c.Entries[1].Val)
	}
}

func TestSortRowMajorProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := FromDense(Uniform(8, 8, 0.4, seed))
		c.SortColMajor()
		c.SortRowMajor()
		want := FromDense(c.ToDense())
		if len(want.Entries) != len(c.Entries) {
			return false
		}
		for i := range want.Entries {
			if want.Entries[i] != c.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDedupKeepsLast(t *testing.T) {
	c := NewCOO(4, 4)
	c.Add(1, 1, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, 7) // overwrites the 3
	c.Dedup()
	if c.NNZ() != 2 {
		t.Fatalf("NNZ after Dedup = %d, want 2", c.NNZ())
	}
	if got := c.ToDense().At(1, 1); got != 7 {
		t.Errorf("deduped (1,1) = %g, want 7 (last write wins)", got)
	}
}

func TestValidateCatchesBadEntries(t *testing.T) {
	c := NewCOO(2, 2)
	c.Entries = append(c.Entries, Entry{Row: 5, Col: 0, Val: 1})
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted out-of-range entry")
	}
	c.Entries = []Entry{{Row: 0, Col: 0, Val: 0}}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted explicit zero")
	}
}

func TestCOOCloneIndependent(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	cl := c.Clone()
	cl.Entries[0].Val = 9
	if c.Entries[0].Val != 1 {
		t.Error("Clone shares entry storage")
	}
}

func TestCOOSparseRatio(t *testing.T) {
	c := NewCOO(10, 10)
	for i := 0; i < 10; i++ {
		c.Add(i, i, 1)
	}
	if got := c.SparseRatio(); got != 0.1 {
		t.Errorf("SparseRatio = %g, want 0.1", got)
	}
	empty := NewCOO(0, 0)
	if empty.SparseRatio() != 0 {
		t.Error("empty COO SparseRatio != 0")
	}
}
