package sparse

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// streamAll drains a ChunkReader into one entry slice.
func streamAll(t *testing.T, src ChunkReader) []Entry {
	t.Helper()
	var out []Entry
	for {
		ch, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out
			}
			t.Fatal(err)
		}
		out = append(out, ch.Entries...)
	}
}

// sameArray asserts a streamed source materializes to exactly the array
// a whole-file reader produces.
func sameArray(t *testing.T, src ChunkReader, want *COO) {
	t.Helper()
	got, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want.ToDense()) {
		t.Error("streamed array differs from whole-file read")
	}
}

func TestTextStreamMatchesReadText(t *testing.T) {
	c := FromDense(Uniform(17, 11, 0.3, 3))
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, chunk := range []int{1, 3, 1024} {
		ts, err := NewTextStream(bytes.NewReader(data), chunk)
		if err != nil {
			t.Fatal(err)
		}
		if r, cols := ts.Shape(); r != 17 || cols != 11 {
			t.Fatalf("shape %dx%d, want 17x11", r, cols)
		}
		sameArray(t, ts, c)
		// Reset rewinds to the first entry.
		if err := ts.Reset(); err != nil {
			t.Fatal(err)
		}
		sameArray(t, ts, c)
	}
}

func TestTextStreamSymmetricAndPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
3 3 7
`
	want, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTextStream(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	sameArray(t, ts, want)

	pat := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	wantPat, err := ReadText(strings.NewReader(pat))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewTextStream(strings.NewReader(pat), 8)
	if err != nil {
		t.Fatal(err)
	}
	sameArray(t, ps, wantPat)
}

// TestNNZMismatchError: a header that lies about the entry count — in
// either direction — must surface as the typed error from both the
// whole-file reader and the stream, so callers can distinguish
// truncated/overgrown files from parse garbage.
func TestNNZMismatchError(t *testing.T) {
	const banner = "%%MatrixMarket matrix coordinate real general\n"
	short := banner + "3 3 5\n1 1 1\n2 2 2\n"
	long := banner + "3 3 1\n1 1 1\n2 2 2\n3 3 3\n"
	for name, in := range map[string]string{"short": short, "long": long} {
		t.Run("ReadText/"+name, func(t *testing.T) {
			_, err := ReadText(strings.NewReader(in))
			var mism *NNZMismatchError
			if !errors.As(err, &mism) {
				t.Fatalf("error %v, want *NNZMismatchError", err)
			}
			if mism.Header == mism.Actual {
				t.Errorf("mismatch error reports equal counts: %+v", mism)
			}
			if !strings.Contains(mism.Error(), "header declares") {
				t.Errorf("unhelpful message %q", mism.Error())
			}
		})
		t.Run("TextStream/"+name, func(t *testing.T) {
			ts, err := NewTextStream(strings.NewReader(in), 64)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Materialize(ts)
			var mism *NNZMismatchError
			if !errors.As(err, &mism) {
				t.Fatalf("error %v, want *NNZMismatchError", err)
			}
		})
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		c := FromDense(Uniform(13, 7, 0.3, seed))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, c); err != nil {
			return false
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return got.ToDense().Equal(c.ToDense())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryStreamMatchesReadBinary(t *testing.T) {
	c := FromDense(Uniform(20, 20, 0.25, 11))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 4096} {
		bs, err := NewBinaryStream(bytes.NewReader(buf.Bytes()), chunk)
		if err != nil {
			t.Fatal(err)
		}
		if bs.NNZHint() != c.NNZ() {
			t.Errorf("NNZHint %d, want %d", bs.NNZHint(), c.NNZ())
		}
		sameArray(t, bs, c)
		if err := bs.Reset(); err != nil {
			t.Fatal(err)
		}
		sameArray(t, bs, c)
	}
}

// TestBinaryWriterNNZContract: the incremental writer enforces the
// declared count on both sides — writes past it fail, and closing short
// yields the typed mismatch error.
func TestBinaryWriterNNZContract(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Entry{Row: 0, Col: 0, Val: 1}); err != nil {
		t.Fatal(err)
	}
	var mism *NNZMismatchError
	if err := bw.Close(); !errors.As(err, &mism) {
		t.Fatalf("short close error %v, want *NNZMismatchError", err)
	}

	buf.Reset()
	bw, err = NewBinaryWriter(&buf, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Entry{Row: 0, Col: 0, Val: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Entry{Row: 1, Col: 1, Val: 2}); err == nil {
		t.Error("write past declared nnz succeeded")
	}
}

// TestBinaryStreamDetectsTruncationAndTrailing: corrupt lengths surface
// as NNZMismatchError, not a silent short read.
func TestBinaryStreamDetectsTruncationAndTrailing(t *testing.T) {
	c := FromDense(Uniform(10, 10, 0.3, 5))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	var mism *NNZMismatchError
	bs, err := NewBinaryStream(bytes.NewReader(whole[:len(whole)-binaryRecordLen]), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(bs); !errors.As(err, &mism) {
		t.Errorf("truncated stream error %v, want *NNZMismatchError", err)
	}

	padded := append(append([]byte{}, whole...), make([]byte, binaryRecordLen)...)
	bs, err = NewBinaryStream(bytes.NewReader(padded), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(bs); !errors.As(err, &mism) {
		t.Errorf("padded stream error %v, want *NNZMismatchError", err)
	}
}

func TestHBStreamMatchesReadHB(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		c := FromDense(Uniform(15, 12, 0.2, seed))
		var buf bytes.Buffer
		if err := WriteHB(&buf, c, "stream test", "STRM"); err != nil {
			t.Fatal(err)
		}
		want, err := ReadHB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 5, 1024} {
			hs, err := NewHBStream(bytes.NewReader(buf.Bytes()), chunk)
			if err != nil {
				t.Fatal(err)
			}
			sameArray(t, hs, want)
			if err := hs.Reset(); err != nil {
				t.Fatal(err)
			}
			sameArray(t, hs, want)
		}
	}
}

func TestOpenStreamSniffsFormats(t *testing.T) {
	c := FromDense(Uniform(9, 9, 0.3, 2))
	dir := t.TempDir()
	write := func(name string, enc func(*bytes.Buffer) error) string {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var hbBuf bytes.Buffer
	if err := WriteHB(&hbBuf, c, "t", "K"); err != nil {
		t.Fatal(err)
	}
	// HB's fixed-width value fields round, so the oracle for that file
	// is what the whole-file HB reader recovers, not the original array.
	hbWant, err := ReadHB(bytes.NewReader(hbBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hbPath := filepath.Join(dir, "a.rua")
	if err := os.WriteFile(hbPath, hbBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind, path string
		want       *COO
	}{
		{"text", write("a.mtx", func(b *bytes.Buffer) error { return WriteText(b, c) }), c},
		{"binary", write("a.bin", func(b *bytes.Buffer) error { return WriteBinary(b, c) }), c},
		{"hb", hbPath, hbWant},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			src, closer, err := OpenStream(tc.path, 16)
			if err != nil {
				t.Fatal(err)
			}
			defer closer.Close()
			sameArray(t, src, tc.want)
		})
	}
}

func TestScanStatsMatchesRowNNZ(t *testing.T) {
	g := Uniform(23, 17, 0.2, 8)
	c := FromDense(g)
	st, err := ScanStats(NewStreamCOO(c, 10))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := RowNNZ(g)
	if len(st.RowNNZ) != len(wantRows) {
		t.Fatalf("RowNNZ length %d, want %d", len(st.RowNNZ), len(wantRows))
	}
	for i := range wantRows {
		if st.RowNNZ[i] != wantRows[i] {
			t.Errorf("RowNNZ[%d] = %d, want %d", i, st.RowNNZ[i], wantRows[i])
		}
	}
	if st.NNZ != c.NNZ() {
		t.Errorf("NNZ = %d, want %d", st.NNZ, c.NNZ())
	}
}

// TestScanStatsLeavesSourceRewound: a count pass must hand the source
// back positioned at the first entry, ready for the distribution pass.
func TestScanStatsLeavesSourceRewound(t *testing.T) {
	c := FromDense(Uniform(8, 8, 0.4, 1))
	src := NewStreamCOO(c, 5)
	if _, err := ScanStats(src); err != nil {
		t.Fatal(err)
	}
	sameArray(t, src, c)
}

func TestUniformStreamProperties(t *testing.T) {
	const rows, cols, nnz = 200, 150, 5000
	u := NewUniformStream(rows, cols, nnz, 42, 512)
	entries := streamAll(t, u)
	if len(entries) != nnz {
		t.Fatalf("emitted %d entries, want %d", len(entries), nnz)
	}
	seen := make(map[[2]int]bool, nnz)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			t.Fatalf("entry (%d,%d) out of range", e.Row, e.Col)
		}
		if e.Val == 0 {
			t.Fatal("zero value emitted")
		}
		key := [2]int{e.Row, e.Col}
		if seen[key] {
			t.Fatalf("duplicate position (%d,%d)", e.Row, e.Col)
		}
		seen[key] = true
	}
	// Deterministic and rewindable: a Reset replays the same sequence.
	if err := u.Reset(); err != nil {
		t.Fatal(err)
	}
	again := streamAll(t, u)
	for i := range entries {
		if entries[i] != again[i] {
			t.Fatalf("entry %d differs after Reset: %+v vs %+v", i, entries[i], again[i])
		}
	}
	// A different seed permutes positions.
	other := streamAll(t, NewUniformStream(rows, cols, nnz, 43, 512))
	diff := 0
	for i := range entries {
		if entries[i] != other[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed change produced identical stream")
	}
}

func TestDedupEntriesKeepsLast(t *testing.T) {
	in := []Entry{
		{Row: 1, Col: 1, Val: 1},
		{Row: 0, Col: 2, Val: 9},
		{Row: 1, Col: 1, Val: 5},
		{Row: 0, Col: 2, Val: 3},
		{Row: 2, Col: 0, Val: 4},
	}
	out := DedupEntries(in)
	want := []Entry{{Row: 0, Col: 2, Val: 3}, {Row: 1, Col: 1, Val: 5}, {Row: 2, Col: 0, Val: 4}}
	if len(out) != len(want) {
		t.Fatalf("deduped to %d entries, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestMaterializeLastWriteWins(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(1, 1, 7)
	c.Add(1, 1, 9)
	g, err := Materialize(NewStreamCOO(c, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 9 {
		t.Errorf("At(1,1) = %v, want 9 (last write wins, matching ToDense)", g.At(1, 1))
	}
}

// TestBalancedRowFromCountsMatchesDense: streamed planning (count pass
// + FromCounts) must land on exactly the boundaries the materialized
// planner picks.
func TestBalancedRowStreamPlanningParity(t *testing.T) {
	g := Uniform(64, 40, 0.18, 13)
	st, err := ScanStats(NewStreamCOO(FromDense(g), 33))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.RowNNZ) != 64 {
		t.Fatalf("RowNNZ length %d, want 64", len(st.RowNNZ))
	}
	want := RowNNZ(g)
	for i, n := range want {
		if st.RowNNZ[i] != n {
			t.Fatalf("row %d count %d, want %d", i, st.RowNNZ[i], n)
		}
	}
}
