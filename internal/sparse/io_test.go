package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	c := FromDense(PaperFigure1())
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(c.ToDense()) {
		t.Error("text round trip changed the array")
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := FromDense(Uniform(13, 7, 0.3, seed))
		var buf bytes.Buffer
		if err := WriteText(&buf, c); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return got.ToDense().Equal(c.ToDense())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment

3 3 2
1 1 1.5

% another comment
3 3 -2
`
	c, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 || c.Cols != 3 || c.NNZ() != 2 {
		t.Fatalf("parsed %dx%d nnz %d, want 3x3 nnz 2", c.Rows, c.Cols, c.NNZ())
	}
	if c.ToDense().At(2, 2) != -2 {
		t.Error("value at (3,3) not parsed")
	}
}

func TestReadTextDropsExplicitZeros(t *testing.T) {
	in := "%%SparseArray coordinate\n2 2 2\n1 1 0\n2 2 5\n"
	c, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (explicit zero dropped)", c.NNZ())
	}
}

func TestReadTextMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2
2 1 -1
3 3 4
`
	c, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := c.ToDense()
	if d.At(0, 1) != -1 || d.At(1, 0) != -1 {
		t.Errorf("off-diagonal not mirrored: %v", d)
	}
	if d.At(0, 0) != 2 || d.At(2, 2) != 4 {
		t.Errorf("diagonal wrong: %v", d)
	}
	if c.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", c.NNZ())
	}
}

func TestReadTextMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
`
	c, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	for _, e := range c.Entries {
		if e.Val != 1 {
			t.Errorf("pattern value %g, want 1", e.Val)
		}
	}
}

func TestReadTextRejectsComplex(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
	if _, err := ReadText(strings.NewReader(in)); err == nil {
		t.Error("complex banner accepted")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "3 3 1\n1 1 1\n"},
		{"short size", "%%X\n3 3\n"},
		{"bad nnz", "%%X\n3 3 x\n"},
		{"truncated entries", "%%X\n3 3 2\n1 1 1\n"},
		{"out of range", "%%X\n2 2 1\n3 1 1\n"},
		{"zero index", "%%X\n2 2 1\n0 1 1\n"},
		{"bad value", "%%X\n2 2 1\n1 1 abc\n"},
		{"negative size", "%%X\n-1 2 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadText(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestLocalStats(t *testing.T) {
	a := NewDense(2, 2) // empty: ratio 0
	b := NewDense(2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 1, 1) // ratio 0.5
	st := LocalStats([]*Dense{a, b})
	if st.GlobalNNZ != 2 {
		t.Errorf("GlobalNNZ = %d, want 2", st.GlobalNNZ)
	}
	if st.GlobalRatio != 0.25 {
		t.Errorf("GlobalRatio = %g, want 0.25", st.GlobalRatio)
	}
	if st.MaxRatio != 0.5 || st.MinRatio != 0 {
		t.Errorf("ratios = [%g, %g], want [0, 0.5]", st.MinRatio, st.MaxRatio)
	}
	if st.MaxLocalNNZ != 2 {
		t.Errorf("MaxLocalNNZ = %d, want 2", st.MaxLocalNNZ)
	}
}

func TestSpy(t *testing.T) {
	// Banded array: the spy plot's marked cells hug the diagonal.
	d := Banded(40, 40, 2, 1.0, 1)
	out := Spy(d, 10, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11 {
		t.Fatalf("spy lines = %d, want 11 (header + 10 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "40x40") {
		t.Errorf("header = %q", lines[0])
	}
	// Row r's marks must sit near column r.
	for r := 1; r <= 10; r++ {
		line := lines[r]
		for c := 0; c < len(line); c++ {
			if line[c] != ' ' && abs(c-(r-1)) > 1 {
				t.Errorf("spy mark at (%d, %d) far from diagonal:\n%s", r-1, c, out)
			}
		}
	}
	if !strings.Contains(Spy(NewDense(0, 0), 5, 5), "empty") {
		t.Error("empty spy wrong")
	}
	// Width larger than the array clamps.
	if got := Spy(NewDense(2, 2), 10, 10); !strings.Contains(got, "2x2") {
		t.Errorf("clamped spy = %q", got)
	}
}

func TestRowColNNZ(t *testing.T) {
	d := PaperFigure1()
	rows := RowNNZ(d)
	wantRows := []int{1, 1, 2, 1, 1, 1, 1, 2, 3, 3}
	for i, w := range wantRows {
		if rows[i] != w {
			t.Errorf("RowNNZ[%d] = %d, want %d", i, rows[i], w)
		}
	}
	cols := ColNNZ(d)
	wantCols := []int{2, 2, 1, 2, 3, 1, 3, 2}
	for j, w := range wantCols {
		if cols[j] != w {
			t.Errorf("ColNNZ[%d] = %d, want %d", j, cols[j], w)
		}
	}
	sum := 0
	for _, n := range cols {
		sum += n
	}
	if sum != 16 {
		t.Errorf("column counts sum to %d, want 16", sum)
	}
}
