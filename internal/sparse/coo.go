package sparse

import (
	"fmt"
	"sort"
)

// Entry is one nonzero element in coordinate (triplet) form.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a sparse array in coordinate form: an explicit list of nonzero
// entries plus the array shape. It is the interchange format between the
// dense substrate, the partitioners, and the compressed formats.
type COO struct {
	Rows, Cols int
	Entries    []Entry
}

// NewCOO returns an empty COO of the given shape.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewCOO(%d, %d): negative dimension", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add appends a nonzero entry. Zero values are ignored so that generators
// can call Add unconditionally. It panics on out-of-range coordinates.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add(%d, %d) out of range %dx%d", i, j, c.Rows, c.Cols))
	}
	if v == 0 {
		return
	}
	c.Entries = append(c.Entries, Entry{Row: i, Col: j, Val: v})
}

// NNZ returns the number of stored entries.
func (c *COO) NNZ() int { return len(c.Entries) }

// SparseRatio returns nnz/(rows*cols).
func (c *COO) SparseRatio() float64 {
	if c.Rows*c.Cols == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.Rows*c.Cols)
}

// SortRowMajor orders entries by (row, col). CRS compression and the
// row-major ED buffer require this order.
func (c *COO) SortRowMajor() {
	sort.Slice(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
}

// SortColMajor orders entries by (col, row). CCS compression and the
// column-major ED buffer require this order.
func (c *COO) SortColMajor() {
	sort.Slice(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Col != eb.Col {
			return ea.Col < eb.Col
		}
		return ea.Row < eb.Row
	})
}

// Dedup removes duplicate coordinates, keeping the last value written for
// each coordinate. The receiver is left sorted row-major.
func (c *COO) Dedup() {
	if len(c.Entries) == 0 {
		return
	}
	// Stable sort keeps insertion order within equal coordinates, so the
	// last inserted duplicate wins.
	sort.SliceStable(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	out := c.Entries[:0]
	for _, e := range c.Entries {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val = e.Val
			continue
		}
		out = append(out, e)
	}
	c.Entries = out
}

// ToDense materialises the COO as a dense array.
func (c *COO) ToDense() *Dense {
	d := NewDense(c.Rows, c.Cols)
	for _, e := range c.Entries {
		d.Set(e.Row, e.Col, e.Val)
	}
	return d
}

// FromDense extracts the nonzero entries of a dense array in row-major
// order.
func FromDense(d *Dense) *COO {
	c := NewCOO(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				c.Entries = append(c.Entries, Entry{Row: i, Col: j, Val: v})
			}
		}
	}
	return c
}

// Clone returns a deep copy.
func (c *COO) Clone() *COO {
	out := &COO{Rows: c.Rows, Cols: c.Cols, Entries: make([]Entry, len(c.Entries))}
	copy(out.Entries, c.Entries)
	return out
}

// Validate checks that every entry is in range and nonzero.
func (c *COO) Validate() error {
	if c.Rows < 0 || c.Cols < 0 {
		return fmt.Errorf("sparse: COO has negative shape %dx%d", c.Rows, c.Cols)
	}
	for k, e := range c.Entries {
		if e.Row < 0 || e.Row >= c.Rows || e.Col < 0 || e.Col >= c.Cols {
			return fmt.Errorf("sparse: COO entry %d at (%d, %d) out of range %dx%d", k, e.Row, e.Col, c.Rows, c.Cols)
		}
		if e.Val == 0 {
			return fmt.Errorf("sparse: COO entry %d at (%d, %d) stores explicit zero", k, e.Row, e.Col)
		}
	}
	return nil
}
