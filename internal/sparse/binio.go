package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary COO container: the out-of-core interchange format. Fixed-width
// little-endian records make it seekable and chunkable without parsing,
// so a multi-gigabyte array streams at disk speed.
//
// Layout:
//
//	8 bytes  magic "SPBINCOO"
//	8 bytes  int64 rows
//	8 bytes  int64 cols
//	8 bytes  int64 nnz (record count)
//	nnz records of 24 bytes: int64 row, int64 col, float64 value
const (
	binaryMagic      = "SPBINCOO"
	binaryHeaderLen  = 8 + 3*8
	binaryRecordLen  = 3 * 8
	maxBinaryEntries = 1 << 40 // sanity cap on a declared nnz
)

// WriteBinary writes the COO to w in the binary container format.
func WriteBinary(w io.Writer, c *COO) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, c.Rows, c.Cols, len(c.Entries)); err != nil {
		return err
	}
	var rec [binaryRecordLen]byte
	for _, e := range c.Entries {
		putBinaryRecord(&rec, e)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("sparse: writing binary entry: %w", err)
		}
	}
	return bw.Flush()
}

func writeBinaryHeader(w io.Writer, rows, cols, nnz int) error {
	var hdr [binaryHeaderLen]byte
	copy(hdr[:8], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(rows))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(cols))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(nnz))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("sparse: writing binary header: %w", err)
	}
	return nil
}

func putBinaryRecord(rec *[binaryRecordLen]byte, e Entry) {
	binary.LittleEndian.PutUint64(rec[0:8], uint64(e.Row))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Col))
	binary.LittleEndian.PutUint64(rec[16:24], math.Float64bits(e.Val))
}

// BinaryWriter writes a binary COO container incrementally, so a
// generator can produce a file bigger than memory. The entry count must
// be declared up front (it lives in the header).
type BinaryWriter struct {
	bw      *bufio.Writer
	declare int
	written int
}

// NewBinaryWriter writes the header for a rows x cols array with
// exactly nnz entries and returns a writer for the records.
func NewBinaryWriter(w io.Writer, rows, cols, nnz int) (*BinaryWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeBinaryHeader(bw, rows, cols, nnz); err != nil {
		return nil, err
	}
	return &BinaryWriter{bw: bw, declare: nnz}, nil
}

// Write appends one entry record.
func (b *BinaryWriter) Write(e Entry) error {
	if b.written == b.declare {
		return fmt.Errorf("sparse: binary writer declared %d entries, got more", b.declare)
	}
	var rec [binaryRecordLen]byte
	putBinaryRecord(&rec, e)
	if _, err := b.bw.Write(rec[:]); err != nil {
		return fmt.Errorf("sparse: writing binary entry: %w", err)
	}
	b.written++
	return nil
}

// Close flushes and verifies the declared count was met.
func (b *BinaryWriter) Close() error {
	if b.written != b.declare {
		return &NNZMismatchError{Header: b.declare, Actual: b.written}
	}
	return b.bw.Flush()
}

// ReadBinary materializes a binary COO container.
func ReadBinary(rs io.ReadSeeker) (*COO, error) {
	s, err := NewBinaryStream(rs, 0)
	if err != nil {
		return nil, err
	}
	c := NewCOO(s.rows, s.cols)
	c.Entries = make([]Entry, 0, s.nnz)
	for {
		ch, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		c.Entries = append(c.Entries, ch.Entries...)
	}
	return c, nil
}

// BinaryStream is the chunked reader for the binary COO container.
type BinaryStream struct {
	rs         io.ReadSeeker
	br         *bufio.Reader
	rows, cols int
	nnz        int
	read       int
	chunk      int
	buf        []Entry
	rec        []byte
}

// NewBinaryStream builds a chunked reader over rs (the constructor
// seeks to the start and parses the header).
func NewBinaryStream(rs io.ReadSeeker, chunkEntries int) (*BinaryStream, error) {
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	b := &BinaryStream{rs: rs, chunk: chunkEntries}
	if err := b.Reset(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *BinaryStream) Shape() (rows, cols int) { return b.rows, b.cols }
func (b *BinaryStream) NNZHint() int            { return b.nnz }

// Reset seeks back to the start and re-parses the header.
func (b *BinaryStream) Reset() error {
	if _, err := b.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sparse: rewinding binary stream: %w", err)
	}
	b.br = bufio.NewReaderSize(b.rs, 1<<20)
	b.read = 0
	var hdr [binaryHeaderLen]byte
	if _, err := io.ReadFull(b.br, hdr[:]); err != nil {
		return fmt.Errorf("sparse: reading binary header: %w", err)
	}
	if string(hdr[:8]) != binaryMagic {
		return fmt.Errorf("sparse: bad binary magic %q", hdr[:8])
	}
	rows := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	cols := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[24:32]))
	if rows < 0 || cols < 0 || nnz < 0 || nnz > maxBinaryEntries {
		return fmt.Errorf("sparse: bad binary header %dx%d nnz %d", rows, cols, nnz)
	}
	b.rows, b.cols, b.nnz = int(rows), int(cols), int(nnz)
	return nil
}

func (b *BinaryStream) Next() (Chunk, error) {
	if b.read >= b.nnz {
		// A well-formed container ends exactly at the declared count;
		// trailing bytes mean the header lied.
		if _, err := b.br.ReadByte(); err == nil {
			return Chunk{}, &NNZMismatchError{Header: b.nnz, Actual: b.nnz + 1}
		}
		return Chunk{}, io.EOF
	}
	n := b.nnz - b.read
	if n > b.chunk {
		n = b.chunk
	}
	if cap(b.buf) < n {
		b.buf = make([]Entry, n)
	}
	b.buf = b.buf[:n]
	if cap(b.rec) < n*binaryRecordLen {
		b.rec = make([]byte, n*binaryRecordLen)
	}
	b.rec = b.rec[:n*binaryRecordLen]
	if _, err := io.ReadFull(b.br, b.rec); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Chunk{}, &NNZMismatchError{Header: b.nnz, Actual: b.read}
		}
		return Chunk{}, fmt.Errorf("sparse: reading binary entries: %w", err)
	}
	for i := 0; i < n; i++ {
		off := i * binaryRecordLen
		row := int64(binary.LittleEndian.Uint64(b.rec[off : off+8]))
		col := int64(binary.LittleEndian.Uint64(b.rec[off+8 : off+16]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(b.rec[off+16 : off+24]))
		if row < 0 || row >= int64(b.rows) || col < 0 || col >= int64(b.cols) {
			return Chunk{}, fmt.Errorf("sparse: binary entry (%d, %d) out of range %dx%d", row, col, b.rows, b.cols)
		}
		b.buf[i] = Entry{Row: int(row), Col: int(col), Val: val}
	}
	b.read += n
	return Chunk{Entries: b.buf}, nil
}
