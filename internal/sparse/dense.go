// Package sparse provides the two-dimensional sparse array substrate used
// by the distribution schemes: a dense row-major array type, a COO
// (coordinate) triplet form, synthetic workload generators, text I/O in a
// Matrix-Market-like format, and sparsity statistics.
//
// Terminology follows the paper "Data Distribution Schemes of Sparse
// Arrays on Distributed Memory Multicomputers" (Lin, Chung, Liu, ICPP
// 2002): the sparse ratio s of an array is nnz / (rows*cols), and s' is
// the largest sparse ratio among the local arrays of a partition.
package sparse

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major two-dimensional array. It is the canonical
// in-memory form of a global sparse array before partitioning: the paper's
// schemes all start from a dense global array held at the root processor.
//
// The zero value is an empty 0x0 array. Use NewDense to allocate.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense allocates a rows x cols dense array of zeros.
// It panics if either dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewDense(%d, %d): negative dimension", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// DenseFromSlice wraps an existing row-major slice as a dense array
// without copying; the caller must not reuse data afterwards. This is
// how a receiver adopts an incoming message payload as its local array.
func DenseFromSlice(rows, cols int, data []float64) (*Dense, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: DenseFromSlice(%d, %d): negative dimension", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("sparse: DenseFromSlice(%d, %d): data has %d elements, want %d", rows, cols, len(data), rows*cols)
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// NewDenseFrom builds a dense array from a slice of rows. All rows must
// have the same length. It copies the input.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	d := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("sparse: NewDenseFrom: row %d has %d columns, want %d", i, len(row), c)
		}
		copy(d.data[i*c:(i+1)*c], row)
	}
	return d, nil
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// Size returns rows*cols.
func (d *Dense) Size() int { return d.rows * d.cols }

// At returns the element at (i, j). It panics if out of range.
func (d *Dense) At(i, j int) float64 {
	d.check(i, j)
	return d.data[i*d.cols+j]
}

// Set assigns the element at (i, j). It panics if out of range.
func (d *Dense) Set(i, j int, v float64) {
	d.check(i, j)
	d.data[i*d.cols+j] = v
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.rows || j < 0 || j >= d.cols {
		panic(fmt.Sprintf("sparse: index (%d, %d) out of range %dx%d", i, j, d.rows, d.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (d *Dense) Row(i int) []float64 {
	if i < 0 || i >= d.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, d.rows))
	}
	return d.data[i*d.cols : (i+1)*d.cols]
}

// Data returns the backing row-major slice (not a copy).
func (d *Dense) Data() []float64 { return d.data }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.rows, d.cols)
	copy(c.data, d.data)
	return c
}

// NNZ counts the nonzero elements.
func (d *Dense) NNZ() int {
	n := 0
	for _, v := range d.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// SparseRatio returns nnz/(rows*cols), the paper's sparse ratio s.
// It returns 0 for an empty array.
func (d *Dense) SparseRatio() float64 {
	if d.Size() == 0 {
		return 0
	}
	return float64(d.NNZ()) / float64(d.Size())
}

// Equal reports whether two dense arrays have identical shape and elements.
func (d *Dense) Equal(o *Dense) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether two dense arrays agree within tol elementwise.
func (d *Dense) ApproxEqual(o *Dense, tol float64) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// SubMatrix copies the rectangle [r0, r0+nr) x [c0, c0+nc) into a new Dense.
func (d *Dense) SubMatrix(r0, c0, nr, nc int) *Dense {
	if r0 < 0 || c0 < 0 || nr < 0 || nc < 0 || r0+nr > d.rows || c0+nc > d.cols {
		panic(fmt.Sprintf("sparse: SubMatrix(%d,%d,%d,%d) out of range %dx%d", r0, c0, nr, nc, d.rows, d.cols))
	}
	s := NewDense(nr, nc)
	for i := 0; i < nr; i++ {
		copy(s.Row(i), d.data[(r0+i)*d.cols+c0:(r0+i)*d.cols+c0+nc])
	}
	return s
}

// Transpose returns a new transposed array.
func (d *Dense) Transpose() *Dense {
	t := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			t.data[j*d.rows+i] = d.data[i*d.cols+j]
		}
	}
	return t
}

// String renders the array in a compact bracketed form, useful for the
// small worked examples from the paper's figures.
func (d *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", d.rows, d.cols)
	for i := 0; i < d.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < d.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", d.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
