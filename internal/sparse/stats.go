package sparse

import (
	"fmt"
	"strings"
)

// Sparsity statistics used by the cost model: the paper's analysis is
// parameterised by the global sparse ratio s and by s', the largest
// sparse ratio among the local sparse arrays of a partition.

// RowNNZ returns the number of nonzeros in each row.
func RowNNZ(d *Dense) []int {
	counts := make([]int, d.Rows())
	for i := 0; i < d.Rows(); i++ {
		for _, v := range d.Row(i) {
			if v != 0 {
				counts[i]++
			}
		}
	}
	return counts
}

// ColNNZ returns the number of nonzeros in each column.
func ColNNZ(d *Dense) []int {
	counts := make([]int, d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j, v := range d.Row(i) {
			if v != 0 {
				counts[j]++
			}
		}
	}
	return counts
}

// Spy renders the sparsity pattern as ASCII art (the classic "spy
// plot"), downsampling the array onto a width x height character grid:
// ' ' for an all-zero cell block, '.' for sparse blocks, 'o' for
// middling ones and '#' for dense ones.
func Spy(d *Dense, width, height int) string {
	if width <= 0 || height <= 0 || d.Rows() == 0 || d.Cols() == 0 {
		return "(empty)\n"
	}
	if width > d.Cols() {
		width = d.Cols()
	}
	if height > d.Rows() {
		height = d.Rows()
	}
	counts := make([]int, width*height)
	cells := make([]int, width*height)
	for i := 0; i < d.Rows(); i++ {
		bi := i * height / d.Rows()
		row := d.Row(i)
		for j, v := range row {
			bj := j * width / d.Cols()
			cells[bi*width+bj]++
			if v != 0 {
				counts[bi*width+bj]++
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d, %d nonzeros (s = %.4f)\n", d.Rows(), d.Cols(), d.NNZ(), d.SparseRatio())
	for bi := 0; bi < height; bi++ {
		for bj := 0; bj < width; bj++ {
			idx := bi*width + bj
			frac := 0.0
			if cells[idx] > 0 {
				frac = float64(counts[idx]) / float64(cells[idx])
			}
			switch {
			case frac == 0:
				b.WriteByte(' ')
			case frac < 0.25:
				b.WriteByte('.')
			case frac < 0.75:
				b.WriteByte('o')
			default:
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats summarises the sparsity of a set of local arrays.
type Stats struct {
	GlobalNNZ   int     // total nonzeros
	GlobalRatio float64 // paper's s
	MaxLocalNNZ int     // largest local nonzero count
	MaxRatio    float64 // paper's s': largest local sparse ratio
	MinRatio    float64 // smallest local sparse ratio
}

// LocalStats computes sparsity statistics over local arrays produced by a
// partition. Empty input yields a zero Stats.
func LocalStats(locals []*Dense) Stats {
	var st Stats
	first := true
	total := 0
	globalSize := 0
	for _, l := range locals {
		nnz := l.NNZ()
		total += nnz
		globalSize += l.Size()
		r := l.SparseRatio()
		if nnz > st.MaxLocalNNZ {
			st.MaxLocalNNZ = nnz
		}
		if first || r > st.MaxRatio {
			st.MaxRatio = r
		}
		if first || r < st.MinRatio {
			st.MinRatio = r
		}
		first = false
	}
	st.GlobalNNZ = total
	if globalSize > 0 {
		st.GlobalRatio = float64(total) / float64(globalSize)
	}
	return st
}
