package sparse

import (
	"fmt"
	"math/rand"
)

// Generators for synthetic sparse workloads. The paper's experiments use
// uniform random two-dimensional sparse arrays with sparse ratio s = 0.1;
// the Harwell-Boeing collection it cites motivates banded and clustered
// patterns as well, so those are provided for the example applications.

// Uniform generates a rows x cols array in which each element is nonzero
// independently with probability ratio. Nonzero values are drawn uniformly
// from (0, 1]. The generator is deterministic for a given seed.
func Uniform(rows, cols int, ratio float64, seed int64) *Dense {
	if ratio < 0 || ratio > 1 {
		panic(fmt.Sprintf("sparse: Uniform ratio %g out of [0, 1]", ratio))
	}
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	for i := range d.data {
		if rng.Float64() < ratio {
			d.data[i] = 1 - rng.Float64() // in (0, 1]
		}
	}
	return d
}

// UniformExact generates a rows x cols array with exactly
// round(ratio*rows*cols) nonzeros placed uniformly at random without
// replacement. Use it when the experiment requires the sparse ratio to be
// exact rather than expected.
func UniformExact(rows, cols int, ratio float64, seed int64) *Dense {
	if ratio < 0 || ratio > 1 {
		panic(fmt.Sprintf("sparse: UniformExact ratio %g out of [0, 1]", ratio))
	}
	size := rows * cols
	want := int(ratio*float64(size) + 0.5)
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	// Floyd's sampling: choose `want` distinct positions out of `size`.
	chosen := make(map[int]struct{}, want)
	for k := size - want; k < size; k++ {
		pos := rng.Intn(k + 1)
		if _, dup := chosen[pos]; dup {
			pos = k
		}
		chosen[pos] = struct{}{}
		d.data[pos] = 1 - rng.Float64()
	}
	return d
}

// Banded generates a rows x cols array with nonzeros only within the given
// bandwidth of the diagonal: element (i, j) may be nonzero iff
// |i-j| <= bandwidth. Within the band each element is nonzero with
// probability fill.
func Banded(rows, cols, bandwidth int, fill float64, seed int64) *Dense {
	if bandwidth < 0 {
		panic(fmt.Sprintf("sparse: Banded bandwidth %d negative", bandwidth))
	}
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		lo := i - bandwidth
		if lo < 0 {
			lo = 0
		}
		hi := i + bandwidth
		if hi >= cols {
			hi = cols - 1
		}
		for j := lo; j <= hi; j++ {
			if rng.Float64() < fill {
				d.Set(i, j, 1-rng.Float64())
			}
		}
	}
	return d
}

// Diagonal generates a square n x n array with the given values on the
// main diagonal (values are cycled if shorter than n).
func Diagonal(n int, values ...float64) *Dense {
	if len(values) == 0 {
		values = []float64{1}
	}
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, values[i%len(values)])
	}
	return d
}

// BlockClustered generates an array whose nonzeros cluster into random
// dense blocks, mimicking finite-element connectivity matrices. blocks is
// the number of clusters, blockSize their edge length, and fill the
// density inside a cluster.
func BlockClustered(rows, cols, blocks, blockSize int, fill float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	if rows == 0 || cols == 0 {
		return d
	}
	for b := 0; b < blocks; b++ {
		r0 := rng.Intn(rows)
		c0 := rng.Intn(cols)
		for i := r0; i < r0+blockSize && i < rows; i++ {
			for j := c0; j < c0+blockSize && j < cols; j++ {
				if rng.Float64() < fill {
					d.Set(i, j, 1-rng.Float64())
				}
			}
		}
	}
	return d
}

// Poisson2D builds the standard 5-point finite-difference Laplacian on a
// g x g grid: an n x n sparse array with n = g*g, 4 on the diagonal and -1
// for each grid neighbour. It is the classic PDE workload motivating the
// paper's finite-element examples and is symmetric positive definite, so
// the conjugate-gradient example can use it.
func Poisson2D(g int) *COO {
	n := g * g
	c := NewCOO(n, n)
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			i := y*g + x
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, i-1, -1)
			}
			if x < g-1 {
				c.Add(i, i+1, -1)
			}
			if y > 0 {
				c.Add(i, i-g, -1)
			}
			if y < g-1 {
				c.Add(i, i+g, -1)
			}
		}
	}
	c.SortRowMajor()
	return c
}

// PaperFigure1 returns the exact 10x8 sparse array with 16 nonzero
// elements used as the worked example in Figures 1-7 of the paper.
// Values 1..16 are assigned in row-major order of the nonzero positions.
func PaperFigure1() *Dense {
	rows := [][]float64{
		{0, 1, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 2, 0},
		{3, 0, 0, 0, 0, 0, 0, 4},
		{0, 0, 0, 0, 0, 5, 0, 0},
		{0, 0, 0, 6, 0, 0, 0, 0},
		{0, 0, 0, 0, 7, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 8, 0},
		{0, 0, 0, 0, 9, 0, 0, 10},
		{0, 11, 12, 0, 13, 0, 0, 0},
		{14, 0, 0, 15, 0, 0, 16, 0},
	}
	d, err := NewDenseFrom(rows)
	if err != nil {
		panic(err) // unreachable: literal rows are rectangular
	}
	return d
}
