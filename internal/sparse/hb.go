package sparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Harwell-Boeing exchange format (the collection the paper cites for its
// "over 80% of sparse applications have s < 0.1" statistic). The format
// is column-compressed with Fortran fixed-width fields:
//
//	line 1: TITLE (A72), KEY (A8)
//	line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD (5I14)
//	line 3: MXTYPE (A3), blank (11X), NROW NCOL NNZERO NELTVL (4I14)
//	line 4: PTRFMT INDFMT (2A16), VALFMT RHSFMT (2A20)
//	then column pointers, row indices and values in the stated formats.
//
// Supported matrix types: R?A (real assembled) and P?A (pattern); the
// symmetric variants RSA/PSA are expanded to full storage on read.
// Writing always emits RUA with (10I8) pointers/indices and (4E20.12)
// values.

// WriteHB writes the COO in Harwell-Boeing RUA format. title and key
// are truncated to 72 and 8 characters.
func WriteHB(w io.Writer, c *COO, title, key string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	s := c.Clone()
	s.SortColMajor()

	// Column pointers (1-based, ncol+1 of them).
	ptr := make([]int, s.Cols+1)
	pos := 0
	for j := 0; j < s.Cols; j++ {
		ptr[j] = pos + 1
		for pos < len(s.Entries) && s.Entries[pos].Col == j {
			pos++
		}
	}
	ptr[s.Cols] = pos + 1

	ind := make([]int, len(s.Entries))
	for k, e := range s.Entries {
		ind[k] = e.Row + 1
	}

	ptrLines := fortranIntLines(ptr, 10, 8)
	indLines := fortranIntLines(ind, 10, 8)
	var valLines []string
	{
		var sb strings.Builder
		for k, e := range s.Entries {
			fmt.Fprintf(&sb, "%20.12E", e.Val)
			if (k+1)%4 == 0 {
				valLines = append(valLines, sb.String())
				sb.Reset()
			}
		}
		if sb.Len() > 0 {
			valLines = append(valLines, sb.String())
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-72s%-8s\n", clip(title, 72), clip(key, 8))
	tot := len(ptrLines) + len(indLines) + len(valLines)
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", tot, len(ptrLines), len(indLines), len(valLines), 0)
	fmt.Fprintf(bw, "%-3s%11s%14d%14d%14d%14d\n", "RUA", "", s.Rows, s.Cols, len(s.Entries), 0)
	fmt.Fprintf(bw, "%-16s%-16s%-20s%-20s\n", "(10I8)", "(10I8)", "(4E20.12)", "")
	for _, lines := range [][]string{ptrLines, indLines, valLines} {
		for _, l := range lines {
			fmt.Fprintln(bw, l)
		}
	}
	return bw.Flush()
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func fortranIntLines(vals []int, perLine, width int) []string {
	var out []string
	var sb strings.Builder
	for k, v := range vals {
		fmt.Fprintf(&sb, "%*d", width, v)
		if (k+1)%perLine == 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	if sb.Len() > 0 {
		out = append(out, sb.String())
	}
	return out
}

// fortranFormat is a parsed (nXw.d) edit descriptor.
type fortranFormat struct {
	count, width int
	kind         byte // 'I', 'E', 'F', 'D'
}

func parseFortranFormat(s string) (fortranFormat, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	// Accept an optional repeat-of-group like 1P before the descriptor.
	t = strings.TrimPrefix(t, "1P")
	t = strings.TrimPrefix(t, ",")
	i := 0
	for i < len(t) && t[i] >= '0' && t[i] <= '9' {
		i++
	}
	if i == len(t) {
		return fortranFormat{}, fmt.Errorf("sparse: bad Fortran format %q", s)
	}
	count := 1
	if i > 0 {
		count, _ = strconv.Atoi(t[:i])
	}
	kind := t[i]
	if kind != 'I' && kind != 'E' && kind != 'F' && kind != 'D' && kind != 'G' {
		return fortranFormat{}, fmt.Errorf("sparse: unsupported Fortran descriptor %q", s)
	}
	if kind == 'G' {
		kind = 'E'
	}
	j := i + 1
	for j < len(t) && t[j] >= '0' && t[j] <= '9' {
		j++
	}
	if j == i+1 {
		return fortranFormat{}, fmt.Errorf("sparse: missing width in %q", s)
	}
	width, _ := strconv.Atoi(t[i+1 : j])
	if count <= 0 || width <= 0 {
		return fortranFormat{}, fmt.Errorf("sparse: non-positive count/width in %q", s)
	}
	return fortranFormat{count: count, width: width, kind: kind}, nil
}

// readFixed reads n fixed-width numeric fields laid out per the format.
func readFixed(sc *bufio.Scanner, f fortranFormat, n int) ([]string, error) {
	out := make([]string, 0, n)
	for len(out) < n {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.ErrUnexpectedEOF
		}
		line := sc.Text()
		for k := 0; k < f.count && len(out) < n; k++ {
			lo := k * f.width
			hi := lo + f.width
			if lo >= len(line) {
				break
			}
			if hi > len(line) {
				hi = len(line)
			}
			field := strings.TrimSpace(line[lo:hi])
			if field == "" {
				break
			}
			out = append(out, field)
		}
	}
	return out, nil
}

// ReadHB parses a Harwell-Boeing file. Symmetric (xSA) matrices are
// expanded to full storage; pattern (Pxx) matrices get unit values.
func ReadHB(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	// Header line 1 (title/key) — content unused.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: HB: missing title line")
	}
	// Line 2: card counts; only RHSCRD matters (we skip RHS blocks).
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: HB: missing card-count line")
	}
	counts := strings.Fields(sc.Text())
	if len(counts) < 4 {
		return nil, fmt.Errorf("sparse: HB: bad card-count line %q", sc.Text())
	}
	valcrd, err := strconv.Atoi(counts[3])
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: bad VALCRD: %w", err)
	}
	// Line 3: type and dimensions.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: HB: missing type line")
	}
	line3 := sc.Text()
	if len(line3) < 3 {
		return nil, fmt.Errorf("sparse: HB: short type line %q", line3)
	}
	mxtype := strings.ToUpper(strings.TrimSpace(line3[:3]))
	if len(mxtype) != 3 || (mxtype[0] != 'R' && mxtype[0] != 'P') || mxtype[2] != 'A' {
		return nil, fmt.Errorf("sparse: HB: unsupported matrix type %q", mxtype)
	}
	dims := strings.Fields(line3[3:])
	if len(dims) < 3 {
		return nil, fmt.Errorf("sparse: HB: bad dimension fields in %q", line3)
	}
	nrow, err := strconv.Atoi(dims[0])
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: bad NROW: %w", err)
	}
	ncol, err := strconv.Atoi(dims[1])
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: bad NCOL: %w", err)
	}
	nnz, err := strconv.Atoi(dims[2])
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: bad NNZERO: %w", err)
	}
	if nrow < 0 || ncol < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: HB: negative dimension")
	}
	// Line 4: formats.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: HB: missing format line")
	}
	line4 := sc.Text()
	ptrFmt, err := parseFortranFormat(fixedField(line4, 0, 16))
	if err != nil {
		return nil, err
	}
	indFmt, err := parseFortranFormat(fixedField(line4, 16, 16))
	if err != nil {
		return nil, err
	}
	var valFmt fortranFormat
	if valcrd > 0 {
		valFmt, err = parseFortranFormat(fixedField(line4, 32, 20))
		if err != nil {
			return nil, err
		}
	}

	ptrFields, err := readFixed(sc, ptrFmt, ncol+1)
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: pointers: %w", err)
	}
	indFields, err := readFixed(sc, indFmt, nnz)
	if err != nil {
		return nil, fmt.Errorf("sparse: HB: indices: %w", err)
	}
	var valFields []string
	if valcrd > 0 {
		valFields, err = readFixed(sc, valFmt, nnz)
		if err != nil {
			return nil, fmt.Errorf("sparse: HB: values: %w", err)
		}
	}

	ptr := make([]int, ncol+1)
	for k, f := range ptrFields {
		ptr[k], err = strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("sparse: HB: pointer %q: %w", f, err)
		}
	}
	if ptr[0] != 1 || ptr[ncol] != nnz+1 {
		return nil, fmt.Errorf("sparse: HB: pointer array inconsistent (ptr[0]=%d, ptr[ncol]=%d, nnz=%d)", ptr[0], ptr[ncol], nnz)
	}

	symmetric := mxtype[1] == 'S'
	out := NewCOO(nrow, ncol)
	for j := 0; j < ncol; j++ {
		if ptr[j+1] < ptr[j] {
			return nil, fmt.Errorf("sparse: HB: pointer decreases at column %d", j)
		}
		for k := ptr[j] - 1; k < ptr[j+1]-1; k++ {
			i, err := strconv.Atoi(indFields[k])
			if err != nil {
				return nil, fmt.Errorf("sparse: HB: index %q: %w", indFields[k], err)
			}
			if i < 1 || i > nrow {
				return nil, fmt.Errorf("sparse: HB: row index %d out of range [1, %d]", i, nrow)
			}
			v := 1.0
			if valcrd > 0 {
				v, err = strconv.ParseFloat(fortranFloat(valFields[k]), 64)
				if err != nil {
					return nil, fmt.Errorf("sparse: HB: value %q: %w", valFields[k], err)
				}
			}
			if v == 0 {
				continue
			}
			out.Entries = append(out.Entries, Entry{Row: i - 1, Col: j, Val: v})
			if symmetric && i-1 != j {
				if j >= nrow || i-1 >= ncol {
					return nil, fmt.Errorf("sparse: HB: symmetric entry (%d, %d) cannot be mirrored", i-1, j)
				}
				out.Entries = append(out.Entries, Entry{Row: j, Col: i - 1, Val: v})
			}
		}
	}
	sort.SliceStable(out.Entries, func(a, b int) bool {
		ea, eb := out.Entries[a], out.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	return out, nil
}

func fixedField(line string, lo, n int) string {
	if lo >= len(line) {
		return ""
	}
	hi := lo + n
	if hi > len(line) {
		hi = len(line)
	}
	return line[lo:hi]
}

// fortranFloat normalises Fortran exponent spellings (1.5D+02, 1.5E02)
// to Go-parsable form.
func fortranFloat(s string) string {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, "D", "E")
	s = strings.ReplaceAll(s, "d", "E")
	return s
}
