package sparse

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Out-of-core streaming ingest. A ChunkReader yields bounded batches of
// coordinate entries instead of a materialized COO or Dense, so the
// distribution engine can partition, encode and ship tiles while the
// input is still being read, with root memory bounded by the chunk size
// plus the engine's accumulator budget rather than by nnz.

// DefaultChunkEntries is the chunk size used when a reader is built
// with chunkEntries <= 0: 64k entries ≈ 1.5 MiB of Entry structs.
const DefaultChunkEntries = 64 * 1024

// Chunk is one bounded batch of coordinate entries (0-based, nonzero
// values). The backing array is owned by the reader and is only valid
// until the next call to Next.
type Chunk struct {
	Entries []Entry
}

// ChunkReader streams a sparse array as a sequence of bounded chunks.
//
// Next returns io.EOF after the last chunk. Readers may repeat a
// coordinate (e.g. a file listing duplicates); consumers that need
// set-semantics must dedup with last-write-wins, matching COO.Dedup and
// ToDense. Reset rewinds the stream to the beginning so it can be
// scanned again (e.g. a stats count pass before the distribution pass).
type ChunkReader interface {
	// Shape returns the declared array dimensions.
	Shape() (rows, cols int)
	// NNZHint returns the declared number of entries the stream will
	// yield, or -1 when the source does not declare one.
	NNZHint() int
	// Next returns the next chunk, or io.EOF when the stream is done.
	Next() (Chunk, error)
	// Reset rewinds the stream to the beginning.
	Reset() error
}

// StreamStats is what one counting pass over a stream learns — enough
// to plan every partition class (balanced-row needs RowNNZ; everything
// else only needs the shape).
type StreamStats struct {
	Rows, Cols int
	// NNZ counts entries as yielded; duplicate coordinates count once
	// each, matching what the stream will deliver on the next pass.
	NNZ    int
	RowNNZ []int
	ColNNZ []int
}

// ScanStats consumes src to the end, counting per-row and per-column
// entries, and rewinds it. This is the cheap count pass: O(rows+cols)
// memory, no entry storage, so balanced partitions can be planned
// without materializing the array.
func ScanStats(src ChunkReader) (*StreamStats, error) {
	rows, cols := src.Shape()
	st := &StreamStats{Rows: rows, Cols: cols,
		RowNNZ: make([]int, rows), ColNNZ: make([]int, cols)}
	for {
		ch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, e := range ch.Entries {
			if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
				return nil, fmt.Errorf("sparse: stream entry (%d, %d) out of range %dx%d", e.Row, e.Col, rows, cols)
			}
			st.RowNNZ[e.Row]++
			st.ColNNZ[e.Col]++
			st.NNZ++
		}
	}
	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("sparse: rewinding stream after count pass: %w", err)
	}
	return st, nil
}

// Materialize drains src into a dense array (last write wins for
// duplicate coordinates) and rewinds it. It is the differential oracle
// for streamed runs and deliberately costs the memory streaming avoids.
func Materialize(src ChunkReader) (*Dense, error) {
	rows, cols := src.Shape()
	d := NewDense(rows, cols)
	for {
		ch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, e := range ch.Entries {
			if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
				return nil, fmt.Errorf("sparse: stream entry (%d, %d) out of range %dx%d", e.Row, e.Col, rows, cols)
			}
			d.Set(e.Row, e.Col, e.Val)
		}
	}
	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("sparse: rewinding stream after materialize: %w", err)
	}
	return d, nil
}

// DedupEntries sorts entries row-major (stable) and drops duplicate
// coordinates keeping the last occurrence — the same semantics as
// COO.Dedup and ToDense, so a streamed receiver reconstructs exactly
// the array a materializing run would have seen. The slice is modified
// in place and the deduped prefix returned.
func DedupEntries(entries []Entry) []Entry {
	c := COO{Entries: entries}
	c.Dedup()
	return c.Entries
}

// StreamCOO adapts an in-memory COO to the ChunkReader interface,
// yielding its entries in order in bounded chunks. The COO must not be
// mutated while streaming.
type StreamCOO struct {
	coo   *COO
	chunk int
	pos   int
}

// NewStreamCOO wraps c in a ChunkReader with the given chunk size
// (entries per chunk; <= 0 uses DefaultChunkEntries).
func NewStreamCOO(c *COO, chunkEntries int) *StreamCOO {
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	return &StreamCOO{coo: c, chunk: chunkEntries}
}

func (s *StreamCOO) Shape() (rows, cols int) { return s.coo.Rows, s.coo.Cols }
func (s *StreamCOO) NNZHint() int            { return len(s.coo.Entries) }
func (s *StreamCOO) Reset() error            { s.pos = 0; return nil }

func (s *StreamCOO) Next() (Chunk, error) {
	if s.pos >= len(s.coo.Entries) {
		return Chunk{}, io.EOF
	}
	end := s.pos + s.chunk
	if end > len(s.coo.Entries) {
		end = len(s.coo.Entries)
	}
	ch := Chunk{Entries: s.coo.Entries[s.pos:end]}
	s.pos = end
	return ch, nil
}

// UniformStream generates exactly nnz distinct nonzero positions of a
// rows x cols array in O(1) memory per entry: positions walk an affine
// bijection pos(k) = (a·k + b) mod (rows·cols) with gcd(a, rows·cols)=1,
// so all positions are distinct without any materialized sample set,
// and values come from a splitmix64 hash of the index. This is how the
// bounded-memory tests and benches get a ~10M-nonzero input that never
// exists in memory at once.
type UniformStream struct {
	rows, cols int
	nnz        int
	a, b       uint64
	seed       uint64
	chunk      int
	pos        int
	buf        []Entry
}

// NewUniformStream builds a deterministic synthetic stream with exactly
// nnz distinct nonzero positions. nnz must not exceed rows*cols.
func NewUniformStream(rows, cols, nnz int, seed int64, chunkEntries int) *UniformStream {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: UniformStream shape %dx%d must be positive", rows, cols))
	}
	size := uint64(rows) * uint64(cols)
	if uint64(nnz) > size {
		panic(fmt.Sprintf("sparse: UniformStream nnz %d exceeds %dx%d", nnz, rows, cols))
	}
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	// Derive an odd multiplier coprime to size; stepping by 2 keeps it
	// odd and terminates because some odd residue is always coprime.
	a := splitmix64(uint64(seed))%size | 1
	for gcd(a, size) != 1 {
		a = (a + 2) % size
		if a == 0 {
			a = 1
		}
	}
	b := splitmix64(uint64(seed)+0x9e3779b97f4a7c15) % size
	return &UniformStream{rows: rows, cols: cols, nnz: nnz,
		a: a, b: b, seed: uint64(seed), chunk: chunkEntries}
}

func (u *UniformStream) Shape() (rows, cols int) { return u.rows, u.cols }
func (u *UniformStream) NNZHint() int            { return u.nnz }
func (u *UniformStream) Reset() error            { u.pos = 0; return nil }

func (u *UniformStream) Next() (Chunk, error) {
	if u.pos >= u.nnz {
		return Chunk{}, io.EOF
	}
	n := u.nnz - u.pos
	if n > u.chunk {
		n = u.chunk
	}
	if cap(u.buf) < n {
		u.buf = make([]Entry, n)
	}
	u.buf = u.buf[:n]
	size := uint64(u.rows) * uint64(u.cols)
	for i := 0; i < n; i++ {
		k := uint64(u.pos + i)
		pos := (u.a*k + u.b) % size
		// Map the hash into (0, 1]: never zero, deterministic per index.
		h := splitmix64(u.seed ^ (k + 1))
		val := float64(h>>11)/float64(1<<53)*0.999 + 0.001
		u.buf[i] = Entry{Row: int(pos / uint64(u.cols)), Col: int(pos % uint64(u.cols)), Val: val}
	}
	u.pos += n
	return Chunk{Entries: u.buf}, nil
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// OpenStream opens path as a ChunkReader, sniffing the format: the
// binary COO magic, then a "%%" banner (text coordinate/Matrix-Market),
// and otherwise Harwell-Boeing. The caller owns closing the returned
// io.Closer (the underlying file).
func OpenStream(path string, chunkEntries int) (ChunkReader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	head := make([]byte, len(binaryMagic))
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		f.Close()
		return nil, nil, fmt.Errorf("sparse: sniffing %s: %w", path, err)
	}
	head = head[:n]
	var r ChunkReader
	switch {
	case bytes.Equal(head, []byte(binaryMagic)):
		r, err = NewBinaryStream(f, chunkEntries)
	case bytes.HasPrefix(head, []byte("%%")):
		r, err = NewTextStream(f, chunkEntries)
	default:
		r, err = NewHBStream(f, chunkEntries)
	}
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}
