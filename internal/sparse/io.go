package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text I/O in a Matrix-Market-like coordinate format. The paper cites the
// Harwell-Boeing sparse matrix collection as the source of realistic
// sparse ratios; this reader/writer lets the command-line tools exchange
// matrices in the collection's spirit (1-based coordinate triplets with a
// size header) without the fixed-column Fortran layout.
//
// Format:
//
//	%%SparseArray coordinate
//	% comment lines start with %
//	<rows> <cols> <nnz>
//	<row> <col> <value>        (1-based, one entry per line)

const textHeader = "%%SparseArray coordinate"

// NNZMismatchError reports a coordinate file whose header-declared
// entry count disagrees with the entry lines actually present — a
// truncated download or a miscounted header, either of which would
// silently distribute the wrong array if accepted.
type NNZMismatchError struct {
	// Header is the count declared on the size line; Actual is the
	// number of entry lines found on file.
	Header, Actual int
}

func (e *NNZMismatchError) Error() string {
	return fmt.Sprintf("sparse: header declares %d entries but file has %d", e.Header, e.Actual)
}

// WriteText writes the COO to w in the text coordinate format. Entries
// are written in their current order.
func WriteText(w io.Writer, c *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d %d\n", textHeader, c.Rows, c.Cols, c.NNZ()); err != nil {
		return fmt.Errorf("sparse: writing header: %w", err)
	}
	for _, e := range c.Entries {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.Row+1, e.Col+1, e.Val); err != nil {
			return fmt.Errorf("sparse: writing entry: %w", err)
		}
	}
	return bw.Flush()
}

// textBanner is what the "%%" header line declares about the payload.
type textBanner struct {
	symmetric bool
	pattern   bool
}

// parseTextBanner interprets the "%%" banner line. It is mostly
// advisory so files from other coordinate-format tools load too, but a
// MatrixMarket "symmetric" qualifier is honoured (the lower triangle on
// file is mirrored on read) and unsupported fields are rejected.
func parseTextBanner(line string) (textBanner, error) {
	if !strings.HasPrefix(line, "%%") {
		return textBanner{}, fmt.Errorf("sparse: missing %%%% header, got %q", line)
	}
	banner := strings.ToLower(line)
	if strings.Contains(banner, "complex") || strings.Contains(banner, "hermitian") {
		return textBanner{}, fmt.Errorf("sparse: unsupported field in banner %q", line)
	}
	return textBanner{
		symmetric: strings.Contains(banner, "symmetric"),
		pattern:   strings.Contains(banner, "pattern"),
	}, nil
}

// parseTextSize parses the "<rows> <cols> <nnz>" size line.
func parseTextSize(line string) (rows, cols, nnz int, err error) {
	f := strings.Fields(line)
	if len(f) != 3 {
		return 0, 0, 0, fmt.Errorf("sparse: size line %q: want 3 fields", line)
	}
	rows, err = strconv.Atoi(f[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("sparse: bad row count %q: %w", f[0], err)
	}
	cols, err = strconv.Atoi(f[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("sparse: bad col count %q: %w", f[1], err)
	}
	nnz, err = strconv.Atoi(f[2])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("sparse: bad nnz count %q: %w", f[2], err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return 0, 0, 0, fmt.Errorf("sparse: negative size field in %q", line)
	}
	return rows, cols, nnz, nil
}

// parseTextEntry parses one 1-based entry line and range-checks it
// against the declared shape. Pattern files carry no value column and
// get an implicit 1.
func parseTextEntry(line string, rows, cols int, pattern bool) (i, j int, v float64, err error) {
	f := strings.Fields(line)
	wantFields := 3
	if pattern {
		wantFields = 2
	}
	if len(f) != wantFields {
		return 0, 0, 0, fmt.Errorf("sparse: entry line %q: want %d fields", line, wantFields)
	}
	i, err = strconv.Atoi(f[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
	}
	j, err = strconv.Atoi(f[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("sparse: bad col index %q: %w", f[1], err)
	}
	v = 1.0
	if !pattern {
		v, err = strconv.ParseFloat(f[2], 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
		}
	}
	if i < 1 || i > rows || j < 1 || j > cols {
		return 0, 0, 0, fmt.Errorf("sparse: entry (%d, %d) out of range %dx%d", i, j, rows, cols)
	}
	return i, j, v, nil
}

// ReadText parses the text coordinate format produced by WriteText. A
// file whose entry-line count disagrees with the header's nnz returns
// *NNZMismatchError rather than silently truncating or accepting.
func ReadText(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading header: %w", err)
	}
	banner, err := parseTextBanner(line)
	if err != nil {
		return nil, err
	}

	line, err = nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading size line: %w", err)
	}
	rows, cols, nnz, err := parseTextSize(line)
	if err != nil {
		return nil, err
	}

	c := NewCOO(rows, cols)
	c.Entries = make([]Entry, 0, nnz)
	for k := 0; k < nnz; k++ {
		line, err = nextLine(sc)
		if err == io.ErrUnexpectedEOF {
			return nil, &NNZMismatchError{Header: nnz, Actual: k}
		}
		if err != nil {
			return nil, fmt.Errorf("sparse: entry %d of %d: %w", k+1, nnz, err)
		}
		i, j, v, err := parseTextEntry(line, rows, cols, banner.pattern)
		if err != nil {
			return nil, err
		}
		if v != 0 {
			c.Entries = append(c.Entries, Entry{Row: i - 1, Col: j - 1, Val: v})
			if banner.symmetric && i != j {
				if j > rows || i > cols {
					return nil, fmt.Errorf("sparse: symmetric entry (%d, %d) cannot be mirrored", i, j)
				}
				c.Entries = append(c.Entries, Entry{Row: j - 1, Col: i - 1, Val: v})
			}
		}
	}
	if extra := countEntryLines(sc); extra > 0 {
		return nil, &NNZMismatchError{Header: nnz, Actual: nnz + extra}
	}
	return c, nil
}

// nextLine returns the next non-empty, non-comment line.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") && !strings.HasPrefix(line, "%%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
