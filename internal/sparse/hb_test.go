package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestHBRoundTrip(t *testing.T) {
	c := FromDense(PaperFigure1())
	var buf bytes.Buffer
	if err := WriteHB(&buf, c, "paper figure 1 worked example", "FIG1"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(c.ToDense()) {
		t.Error("HB round trip changed the array")
	}
}

func TestHBRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := FromDense(Uniform(17, 11, 0.25, seed))
		var buf bytes.Buffer
		if err := WriteHB(&buf, c, "prop", "K"); err != nil {
			return false
		}
		got, err := ReadHB(&buf)
		if err != nil {
			return false
		}
		return got.ToDense().ApproxEqual(c.ToDense(), 1e-11)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHBHeaderLayout(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1.5)
	var buf bytes.Buffer
	if err := WriteHB(&buf, c, "title", "KEY"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d lines", len(lines))
	}
	if len(lines[0]) != 80 {
		t.Errorf("title line is %d chars, want 80", len(lines[0]))
	}
	if !strings.HasPrefix(lines[2], "RUA") {
		t.Errorf("type line = %q, want RUA prefix", lines[2])
	}
	if !strings.Contains(lines[3], "(10I8)") || !strings.Contains(lines[3], "(4E20.12)") {
		t.Errorf("format line = %q", lines[3])
	}
}

// hand-written HB fixture with Fortran D exponents and RSA symmetry.
const hbSymmetric = `symmetric test matrix                                                   SYM1
             5             1             1             1             0
RSA                         3             3             4             0
(4I8)           (8I4)           (4D20.12)
       1       3       4       5
   1   3   2   3
  0.200000000000D+01 -0.100000000000D+01  0.300000000000D+01  0.400000000000D+01
`

func TestReadHBSymmetricExpansion(t *testing.T) {
	c, err := ReadHB(strings.NewReader(hbSymmetric))
	if err != nil {
		t.Fatal(err)
	}
	d := c.ToDense()
	// Column 0 held (1,1)=2 and (3,1)=-1; expansion adds (1,3)=-1.
	if d.At(0, 0) != 2 || d.At(2, 0) != -1 || d.At(0, 2) != -1 {
		t.Errorf("symmetric expansion wrong: %v", d)
	}
	if d.At(1, 1) != 3 || d.At(2, 2) != 4 {
		t.Errorf("diagonal entries wrong: %v", d)
	}
	if c.NNZ() != 5 { // 4 stored + 1 mirrored
		t.Errorf("NNZ = %d, want 5", c.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatalf("not symmetric at (%d, %d)", i, j)
			}
		}
	}
}

const hbPattern = `pattern matrix                                                          PAT1
             2             1             1             0             0
PUA                         2             3             3             0
(4I8)           (8I4)
       1       2       3       4
   1   2   1
`

func TestReadHBPatternUnitValues(t *testing.T) {
	c, err := ReadHB(strings.NewReader(hbPattern))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
	for _, e := range c.Entries {
		if e.Val != 1 {
			t.Errorf("pattern entry value %g, want 1", e.Val)
		}
	}
	d := c.ToDense()
	if d.At(0, 0) != 1 || d.At(1, 1) != 1 || d.At(0, 2) != 1 {
		t.Errorf("pattern positions wrong: %v", d)
	}
}

func TestReadHBErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"missing counts", "title\n"},
		{"bad counts", "title\na b c d e\nRUA 1 1 1 0\n"},
		{"unsupported type", "t\n1 1 1 1 0\nCUA        1 1 1 0\n(4I8)           (4I8)           (4E20.12)\n"},
		{"bad pointer total", "t\n3 1 1 1 0\nRUA            2 2 2 0\n(4I8)           (8I4)           (4E20.12)\n       1       2       9\n   1   2\n  1.0                 2.0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadHB(strings.NewReader(c.in)); err == nil {
				t.Error("malformed HB accepted")
			}
		})
	}
}

func TestParseFortranFormat(t *testing.T) {
	cases := map[string]fortranFormat{
		"(10I8)":     {count: 10, width: 8, kind: 'I'},
		"(4E20.12)":  {count: 4, width: 20, kind: 'E'},
		"(1P4D16.8)": {count: 4, width: 16, kind: 'D'},
		"(8F10.3)":   {count: 8, width: 10, kind: 'F'},
		"(5G25.16)":  {count: 5, width: 25, kind: 'E'},
		"I8":         {count: 1, width: 8, kind: 'I'},
	}
	for in, want := range cases {
		got, err := parseFortranFormat(in)
		if err != nil {
			t.Errorf("parseFortranFormat(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseFortranFormat(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "()", "(XYZ)", "(4Q8)", "(0I8)", "(4I)"} {
		if _, err := parseFortranFormat(bad); err == nil {
			t.Errorf("parseFortranFormat(%q) accepted", bad)
		}
	}
}

func TestFortranFloat(t *testing.T) {
	cases := map[string]string{
		"0.15D+01": "0.15E+01",
		" 1.5e2 ":  "1.5e2",
		"2.5":      "2.5",
	}
	for in, want := range cases {
		if got := fortranFloat(in); got != want {
			t.Errorf("fortranFloat(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteHBRejectsInvalid(t *testing.T) {
	c := NewCOO(2, 2)
	c.Entries = append(c.Entries, Entry{Row: 5, Col: 0, Val: 1})
	var buf bytes.Buffer
	if err := WriteHB(&buf, c, "t", "k"); err == nil {
		t.Error("invalid COO accepted")
	}
}
