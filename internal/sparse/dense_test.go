package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	d := NewDense(3, 4)
	if d.Rows() != 3 || d.Cols() != 4 || d.Size() != 12 {
		t.Fatalf("shape = %dx%d size %d, want 3x4 size 12", d.Rows(), d.Cols(), d.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if d.At(i, j) != 0 {
				t.Fatalf("At(%d, %d) = %g, want 0", i, j, d.At(i, j))
			}
		}
	}
	if d.NNZ() != 0 || d.SparseRatio() != 0 {
		t.Fatalf("NNZ = %d ratio = %g, want 0, 0", d.NNZ(), d.SparseRatio())
	}
}

func TestDenseSetAt(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 7.5)
	d.Set(0, 0, -1)
	if got := d.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %g, want 7.5", got)
	}
	if got := d.At(0, 0); got != -1 {
		t.Errorf("At(0,0) = %g, want -1", got)
	}
	if d.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", d.NNZ())
	}
	if got, want := d.SparseRatio(), 2.0/6.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("SparseRatio = %g, want %g", got, want)
	}
}

func TestDensePanicsOutOfRange(t *testing.T) {
	d := NewDense(2, 2)
	cases := []struct{ i, j int }{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d, %d) did not panic", c.i, c.j)
				}
			}()
			d.At(c.i, c.j)
		}()
	}
}

func TestNewDensePanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(-1, 2) did not panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFrom(t *testing.T) {
	d, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 1) != 2 || d.At(1, 0) != 3 {
		t.Errorf("unexpected contents: %v", d)
	}
}

func TestNewDenseFromRagged(t *testing.T) {
	if _, err := NewDenseFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input did not error")
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	c := d.Clone()
	c.Set(0, 0, 9)
	if d.At(0, 0) != 1 {
		t.Errorf("Clone shares storage: original mutated to %g", d.At(0, 0))
	}
	if !d.Equal(d.Clone()) {
		t.Error("Clone not Equal to original")
	}
}

func TestDenseEqualShapes(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	if a.Equal(b) {
		t.Error("different shapes reported Equal")
	}
}

func TestDenseApproxEqual(t *testing.T) {
	a := NewDense(1, 2)
	b := NewDense(1, 2)
	a.Set(0, 0, 1.0)
	b.Set(0, 0, 1.0+1e-12)
	if !a.ApproxEqual(b, 1e-9) {
		t.Error("ApproxEqual(1e-9) = false, want true")
	}
	if a.ApproxEqual(b, 1e-15) {
		t.Error("ApproxEqual(1e-15) = true, want false")
	}
}

func TestDenseSubMatrix(t *testing.T) {
	d := PaperFigure1()
	s := d.SubMatrix(3, 0, 3, 8) // rows 3..5, the paper's P1 block
	if s.Rows() != 3 || s.Cols() != 8 {
		t.Fatalf("shape = %dx%d, want 3x8", s.Rows(), s.Cols())
	}
	if s.At(0, 5) != 5 || s.At(1, 3) != 6 || s.At(2, 4) != 7 {
		t.Errorf("SubMatrix contents wrong: %v", s)
	}
	if s.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", s.NNZ())
	}
}

func TestDenseSubMatrixOutOfRange(t *testing.T) {
	d := NewDense(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SubMatrix beyond bounds did not panic")
		}
	}()
	d.SubMatrix(2, 2, 3, 1)
}

func TestDenseTranspose(t *testing.T) {
	d, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := d.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d, %d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		d := Uniform(7, 5, 0.3, seed)
		return d.Transpose().Transpose().Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDenseRowView(t *testing.T) {
	d := NewDense(2, 3)
	row := d.Row(1)
	row[2] = 42 // views alias the backing store
	if d.At(1, 2) != 42 {
		t.Error("Row does not alias backing storage")
	}
}

func TestDenseString(t *testing.T) {
	d, _ := NewDenseFrom([][]float64{{1, 0}, {0, 2}})
	want := "2x2[1 0; 0 2]"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPaperFigure1Shape(t *testing.T) {
	d := PaperFigure1()
	if d.Rows() != 10 || d.Cols() != 8 {
		t.Fatalf("figure 1 shape = %dx%d, want 10x8", d.Rows(), d.Cols())
	}
	if d.NNZ() != 16 {
		t.Fatalf("figure 1 NNZ = %d, want 16", d.NNZ())
	}
	// Values 1..16 appear exactly once each, in row-major order.
	seen := 0.0
	for i := 0; i < d.Rows(); i++ {
		for _, v := range d.Row(i) {
			if v != 0 {
				seen++
				if v != seen {
					t.Fatalf("nonzero #%g has value %g; want row-major 1..16", seen, v)
				}
			}
		}
	}
}
