package sparse

import (
	"math"
	"testing"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(50, 50, 0.1, 42)
	b := Uniform(50, 50, 0.1, 42)
	if !a.Equal(b) {
		t.Error("Uniform with same seed produced different arrays")
	}
	c := Uniform(50, 50, 0.1, 43)
	if a.Equal(c) {
		t.Error("Uniform with different seeds produced identical arrays")
	}
}

func TestUniformRatioApproximate(t *testing.T) {
	d := Uniform(200, 200, 0.1, 1)
	got := d.SparseRatio()
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("SparseRatio = %g, want ~0.1", got)
	}
}

func TestUniformRatioBounds(t *testing.T) {
	if got := Uniform(20, 20, 0, 1).NNZ(); got != 0 {
		t.Errorf("ratio 0 produced %d nonzeros", got)
	}
	if got := Uniform(20, 20, 1, 1).NNZ(); got != 400 {
		t.Errorf("ratio 1 produced %d nonzeros, want 400", got)
	}
}

func TestUniformPanicsBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(ratio=2) did not panic")
		}
	}()
	Uniform(2, 2, 2, 1)
}

func TestUniformExactCount(t *testing.T) {
	d := UniformExact(100, 100, 0.1, 7)
	if got := d.NNZ(); got != 1000 {
		t.Errorf("UniformExact NNZ = %d, want exactly 1000", got)
	}
	if !d.Equal(UniformExact(100, 100, 0.1, 7)) {
		t.Error("UniformExact not deterministic for fixed seed")
	}
}

func TestBandedStaysInBand(t *testing.T) {
	d := Banded(40, 40, 3, 0.9, 5)
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if d.At(i, j) != 0 && abs(i-j) > 3 {
				t.Fatalf("nonzero at (%d, %d) outside bandwidth 3", i, j)
			}
		}
	}
	if d.NNZ() == 0 {
		t.Error("banded generator produced empty array at fill 0.9")
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal(4, 2, 3)
	want := [][]float64{{2, 0, 0, 0}, {0, 3, 0, 0}, {0, 0, 2, 0}, {0, 0, 0, 3}}
	w, _ := NewDenseFrom(want)
	if !d.Equal(w) {
		t.Errorf("Diagonal(4, 2, 3) = %v, want %v", d, w)
	}
	if Diagonal(3).At(2, 2) != 1 {
		t.Error("Diagonal default value is not 1")
	}
}

func TestBlockClusteredInRange(t *testing.T) {
	d := BlockClustered(30, 30, 5, 4, 0.8, 9)
	if d.NNZ() == 0 {
		t.Error("BlockClustered produced empty array")
	}
	if d.Rows() != 30 || d.Cols() != 30 {
		t.Errorf("shape = %dx%d, want 30x30", d.Rows(), d.Cols())
	}
}

func TestPoisson2DStructure(t *testing.T) {
	g := 4
	c := Poisson2D(g)
	if c.Rows != g*g || c.Cols != g*g {
		t.Fatalf("shape = %dx%d, want %dx%d", c.Rows, c.Cols, g*g, g*g)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d := c.ToDense()
	// Symmetric with 4 on the diagonal.
	for i := 0; i < g*g; i++ {
		if d.At(i, i) != 4 {
			t.Fatalf("diagonal (%d, %d) = %g, want 4", i, i, d.At(i, i))
		}
		for j := 0; j < g*g; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatalf("asymmetric at (%d, %d)", i, j)
			}
		}
	}
	// Interior point has exactly 4 neighbours: row sums to 0 there.
	interior := (g/2)*g + g/2
	sum := 0.0
	for j := 0; j < g*g; j++ {
		sum += d.At(interior, j)
	}
	if sum != 0 {
		t.Errorf("interior row sum = %g, want 0", sum)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
