package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// HBStream is the chunked reader for Harwell-Boeing files. The column
// pointer array (ncol+1 ints) is held in memory — it is the small part —
// while row indices and values stream through two parallel line
// cursors, one positioned at the index section and one at the value
// section (located by the header's card counts), advancing in lockstep
// so each entry costs O(1) memory. Symmetric (xSA) matrices are
// mirrored on the fly; pattern (Pxx) matrices get unit values.
type HBStream struct {
	ra         io.ReaderAt
	rows, cols int
	nnz        int
	symmetric  bool
	valcrd     int
	ptrcrd     int
	indcrd     int
	indFmt     fortranFormat
	valFmt     fortranFormat
	ptr        []int

	ind   *fixedFieldReader
	val   *fixedFieldReader
	j     int // current column
	k     int // current entry ordinal
	chunk int
	buf   []Entry
}

// NewHBStream builds a chunked reader over ra (typically an *os.File).
// The header and column pointers are parsed eagerly.
func NewHBStream(ra io.ReaderAt, chunkEntries int) (*HBStream, error) {
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	h := &HBStream{ra: ra, chunk: chunkEntries}
	if err := h.Reset(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *HBStream) Shape() (rows, cols int) { return h.rows, h.cols }

// NNZHint returns the header's NNZERO. A symmetric file yields up to
// twice that after mirroring; the hint stays the declared figure.
func (h *HBStream) NNZHint() int { return h.nnz }

// Reset re-parses the header and repositions both section cursors.
func (h *HBStream) Reset() error {
	sc := h.sectionScanner()

	// Header line 1 (title/key) — content unused.
	if !sc.Scan() {
		return fmt.Errorf("sparse: HB: missing title line")
	}
	// Line 2: card counts locate the index and value sections.
	if !sc.Scan() {
		return fmt.Errorf("sparse: HB: missing card-count line")
	}
	counts := strings.Fields(sc.Text())
	if len(counts) < 4 {
		return fmt.Errorf("sparse: HB: bad card-count line %q", sc.Text())
	}
	var err error
	if h.ptrcrd, err = strconv.Atoi(counts[1]); err != nil {
		return fmt.Errorf("sparse: HB: bad PTRCRD: %w", err)
	}
	if h.indcrd, err = strconv.Atoi(counts[2]); err != nil {
		return fmt.Errorf("sparse: HB: bad INDCRD: %w", err)
	}
	if h.valcrd, err = strconv.Atoi(counts[3]); err != nil {
		return fmt.Errorf("sparse: HB: bad VALCRD: %w", err)
	}
	// Line 3: type and dimensions.
	if !sc.Scan() {
		return fmt.Errorf("sparse: HB: missing type line")
	}
	line3 := sc.Text()
	if len(line3) < 3 {
		return fmt.Errorf("sparse: HB: short type line %q", line3)
	}
	mxtype := strings.ToUpper(strings.TrimSpace(line3[:3]))
	if len(mxtype) != 3 || (mxtype[0] != 'R' && mxtype[0] != 'P') || mxtype[2] != 'A' {
		return fmt.Errorf("sparse: HB: unsupported matrix type %q", mxtype)
	}
	h.symmetric = mxtype[1] == 'S'
	dims := strings.Fields(line3[3:])
	if len(dims) < 3 {
		return fmt.Errorf("sparse: HB: bad dimension fields in %q", line3)
	}
	if h.rows, err = strconv.Atoi(dims[0]); err != nil {
		return fmt.Errorf("sparse: HB: bad NROW: %w", err)
	}
	if h.cols, err = strconv.Atoi(dims[1]); err != nil {
		return fmt.Errorf("sparse: HB: bad NCOL: %w", err)
	}
	if h.nnz, err = strconv.Atoi(dims[2]); err != nil {
		return fmt.Errorf("sparse: HB: bad NNZERO: %w", err)
	}
	if h.rows < 0 || h.cols < 0 || h.nnz < 0 {
		return fmt.Errorf("sparse: HB: negative dimension")
	}
	// Line 4: formats.
	if !sc.Scan() {
		return fmt.Errorf("sparse: HB: missing format line")
	}
	line4 := sc.Text()
	ptrFmt, err := parseFortranFormat(fixedField(line4, 0, 16))
	if err != nil {
		return err
	}
	if h.indFmt, err = parseFortranFormat(fixedField(line4, 16, 16)); err != nil {
		return err
	}
	if h.valcrd > 0 {
		if h.valFmt, err = parseFortranFormat(fixedField(line4, 32, 20)); err != nil {
			return err
		}
	}

	// Column pointers: small (ncol+1), kept resident. The scanner is
	// now positioned right after them — that is the index cursor.
	ptrFields, err := readFixed(sc, ptrFmt, h.cols+1)
	if err != nil {
		return fmt.Errorf("sparse: HB: pointers: %w", err)
	}
	h.ptr = make([]int, h.cols+1)
	for k, f := range ptrFields {
		if h.ptr[k], err = strconv.Atoi(f); err != nil {
			return fmt.Errorf("sparse: HB: pointer %q: %w", f, err)
		}
	}
	if h.ptr[0] != 1 || h.ptr[h.cols] != h.nnz+1 {
		return fmt.Errorf("sparse: HB: pointer array inconsistent (ptr[0]=%d, ptr[ncol]=%d, nnz=%d)", h.ptr[0], h.ptr[h.cols], h.nnz)
	}
	for j := 0; j < h.cols; j++ {
		if h.ptr[j+1] < h.ptr[j] {
			return fmt.Errorf("sparse: HB: pointer decreases at column %d", j)
		}
	}
	h.ind = &fixedFieldReader{sc: sc, f: h.indFmt}

	// The value cursor starts on its own reader, skipped past the
	// header and the pointer and index cards.
	if h.valcrd > 0 {
		vsc := h.sectionScanner()
		for skip := 4 + h.ptrcrd + h.indcrd; skip > 0; skip-- {
			if !vsc.Scan() {
				return fmt.Errorf("sparse: HB: file ends before value section")
			}
		}
		h.val = &fixedFieldReader{sc: vsc, f: h.valFmt}
	} else {
		h.val = nil
	}
	h.j, h.k = 0, 0
	return nil
}

// sectionScanner returns a fresh line scanner over the whole file.
func (h *HBStream) sectionScanner() *bufio.Scanner {
	sc := bufio.NewScanner(io.NewSectionReader(h.ra, 0, 1<<62))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

func (h *HBStream) Next() (Chunk, error) {
	if h.k >= h.nnz {
		return Chunk{}, io.EOF
	}
	if cap(h.buf) < 2*h.chunk {
		h.buf = make([]Entry, 0, 2*h.chunk)
	}
	h.buf = h.buf[:0]
	for len(h.buf) < h.chunk && h.k < h.nnz {
		for h.j < h.cols && h.k >= h.ptr[h.j+1]-1 {
			h.j++
		}
		if h.j >= h.cols {
			return Chunk{}, fmt.Errorf("sparse: HB: entry %d beyond last column", h.k)
		}
		indField, err := h.ind.next()
		if err != nil {
			return Chunk{}, fmt.Errorf("sparse: HB: indices: %w", err)
		}
		i, err := strconv.Atoi(indField)
		if err != nil {
			return Chunk{}, fmt.Errorf("sparse: HB: index %q: %w", indField, err)
		}
		if i < 1 || i > h.rows {
			return Chunk{}, fmt.Errorf("sparse: HB: row index %d out of range [1, %d]", i, h.rows)
		}
		v := 1.0
		if h.val != nil {
			valField, err := h.val.next()
			if err != nil {
				return Chunk{}, fmt.Errorf("sparse: HB: values: %w", err)
			}
			if v, err = strconv.ParseFloat(fortranFloat(valField), 64); err != nil {
				return Chunk{}, fmt.Errorf("sparse: HB: value %q: %w", valField, err)
			}
		}
		h.k++
		if v == 0 {
			continue
		}
		h.buf = append(h.buf, Entry{Row: i - 1, Col: h.j, Val: v})
		if h.symmetric && i-1 != h.j {
			if h.j >= h.rows || i-1 >= h.cols {
				return Chunk{}, fmt.Errorf("sparse: HB: symmetric entry (%d, %d) cannot be mirrored", i-1, h.j)
			}
			h.buf = append(h.buf, Entry{Row: h.j, Col: i - 1, Val: v})
		}
	}
	if len(h.buf) == 0 {
		return Chunk{}, io.EOF
	}
	return Chunk{Entries: h.buf}, nil
}

// fixedFieldReader yields fixed-width fields one at a time — the
// incremental twin of readFixed, advancing to the next line when the
// current one runs out of populated fields.
type fixedFieldReader struct {
	sc      *bufio.Scanner
	f       fortranFormat
	line    string
	k       int
	started bool
}

func (r *fixedFieldReader) next() (string, error) {
	for {
		if r.started {
			for r.k < r.f.count {
				lo := r.k * r.f.width
				if lo >= len(r.line) {
					break
				}
				hi := lo + r.f.width
				if hi > len(r.line) {
					hi = len(r.line)
				}
				field := strings.TrimSpace(r.line[lo:hi])
				r.k++
				if field == "" {
					// Mirror readFixed: a blank field ends the line.
					r.k = r.f.count
					break
				}
				return field, nil
			}
		}
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		r.line = r.sc.Text()
		r.k = 0
		r.started = true
	}
}
