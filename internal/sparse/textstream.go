package sparse

import (
	"bufio"
	"fmt"
	"io"
)

// TextStream is the chunked reader for the text coordinate format (and
// Matrix-Market-style banners): one pass over the file, bounded entry
// batches, symmetric mirroring applied on the fly. It shares the line
// parsers with ReadText so the two paths accept exactly the same files.
type TextStream struct {
	rs        io.ReadSeeker
	sc        *bufio.Scanner
	rows      int
	cols      int
	nnz       int // header-declared entry count (file lines)
	read      int // entry lines consumed so far
	symmetric bool
	pattern   bool
	chunk     int
	buf       []Entry
	done      bool
}

// NewTextStream builds a chunked reader over rs, which must be
// positioned anywhere (the constructor seeks to the start). The header
// is parsed eagerly so Shape/NNZHint are available before the first
// chunk.
func NewTextStream(rs io.ReadSeeker, chunkEntries int) (*TextStream, error) {
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	t := &TextStream{rs: rs, chunk: chunkEntries}
	if err := t.Reset(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *TextStream) Shape() (rows, cols int) { return t.rows, t.cols }

// NNZHint returns the header-declared entry count. A symmetric file
// yields up to twice that after mirroring; the hint stays the declared
// figure.
func (t *TextStream) NNZHint() int { return t.nnz }

// Reset seeks back to the start and re-parses the header.
func (t *TextStream) Reset() error {
	if _, err := t.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sparse: rewinding text stream: %w", err)
	}
	t.sc = bufio.NewScanner(t.rs)
	t.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t.read = 0
	t.done = false

	line, err := nextLine(t.sc)
	if err != nil {
		return fmt.Errorf("sparse: reading header: %w", err)
	}
	banner, err := parseTextBanner(line)
	if err != nil {
		return err
	}
	t.symmetric, t.pattern = banner.symmetric, banner.pattern

	line, err = nextLine(t.sc)
	if err != nil {
		return fmt.Errorf("sparse: reading size line: %w", err)
	}
	t.rows, t.cols, t.nnz, err = parseTextSize(line)
	return err
}

func (t *TextStream) Next() (Chunk, error) {
	if t.done {
		return Chunk{}, io.EOF
	}
	if cap(t.buf) < 2*t.chunk {
		t.buf = make([]Entry, 0, 2*t.chunk)
	}
	t.buf = t.buf[:0]
	for len(t.buf) < t.chunk {
		if t.read == t.nnz {
			// All declared entries consumed: anything further on file is
			// a header/payload disagreement, same as a short file.
			if extra := countEntryLines(t.sc); extra > 0 {
				return Chunk{}, &NNZMismatchError{Header: t.nnz, Actual: t.nnz + extra}
			}
			t.done = true
			break
		}
		line, err := nextLine(t.sc)
		if err == io.ErrUnexpectedEOF {
			return Chunk{}, &NNZMismatchError{Header: t.nnz, Actual: t.read}
		}
		if err != nil {
			return Chunk{}, fmt.Errorf("sparse: entry %d of %d: %w", t.read+1, t.nnz, err)
		}
		i, j, v, err := parseTextEntry(line, t.rows, t.cols, t.pattern)
		if err != nil {
			return Chunk{}, err
		}
		t.read++
		if v == 0 {
			continue
		}
		t.buf = append(t.buf, Entry{Row: i - 1, Col: j - 1, Val: v})
		if t.symmetric && i != j {
			if j > t.rows || i > t.cols {
				return Chunk{}, fmt.Errorf("sparse: symmetric entry (%d, %d) cannot be mirrored", i, j)
			}
			t.buf = append(t.buf, Entry{Row: j - 1, Col: i - 1, Val: v})
		}
	}
	if len(t.buf) == 0 {
		if !t.done {
			t.done = true
		}
		return Chunk{}, io.EOF
	}
	return Chunk{Entries: t.buf}, nil
}

// countEntryLines counts the non-blank, non-comment lines left on sc.
func countEntryLines(sc *bufio.Scanner) int {
	n := 0
	for {
		if _, err := nextLine(sc); err != nil {
			return n
		}
		n++
	}
}
