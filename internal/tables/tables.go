// Package tables defines and runs the paper's experiments: Tables 3, 4
// and 5 (measured distribution/compression times for the SFC, CFS and ED
// schemes under the row, column and 2D mesh partitions) and the
// predicted counterparts of Tables 1 and 2. Output is formatted like the
// paper's tables: one group per processor count, two cost rows per
// scheme, one column per array size, times in milliseconds.
package tables

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// ProcSpec is one processor configuration of an experiment.
type ProcSpec struct {
	P      int
	Pr, Pc int    // mesh grid; zero for row/col partitions
	Label  string // printed label, e.g. "4" or "2x2"
}

// Experiment is one of the paper's measured tables.
type Experiment struct {
	Name   string // "Table 3"
	Title  string
	Kind   costmodel.PartitionKind
	Method dist.Method
	Sizes  []int // square array sizes n
	Procs  []ProcSpec
	Ratio  float64 // sparse ratio s
	Seed   int64
}

// Table3 is the paper's Table 3: row partition, CRS, s = 0.1,
// n ∈ {200, 400, 800, 1000, 2000}, p ∈ {4, 16, 32}.
func Table3() Experiment {
	return Experiment{
		Name:   "Table 3",
		Title:  "row partition method, CRS",
		Kind:   costmodel.RowPart,
		Method: dist.CRS,
		Sizes:  []int{200, 400, 800, 1000, 2000},
		Procs:  []ProcSpec{{P: 4, Label: "4"}, {P: 16, Label: "16"}, {P: 32, Label: "32"}},
		Ratio:  0.1,
		Seed:   1,
	}
}

// Table4 is the paper's Table 4: column partition, same grid.
func Table4() Experiment {
	e := Table3()
	e.Name = "Table 4"
	e.Title = "column partition method, CRS"
	e.Kind = costmodel.ColPart
	e.Seed = 2
	return e
}

// Table5 is the paper's Table 5: 2D mesh partition, CRS, s = 0.1,
// n ∈ {120, 240, 480, 960, 1920}, grids 2x2, 4x4, 6x6.
func Table5() Experiment {
	return Experiment{
		Name:   "Table 5",
		Title:  "2D mesh partition method, CRS",
		Kind:   costmodel.MeshPart,
		Method: dist.CRS,
		Sizes:  []int{120, 240, 480, 960, 1920},
		Procs: []ProcSpec{
			{P: 4, Pr: 2, Pc: 2, Label: "2x2"},
			{P: 16, Pr: 4, Pc: 4, Label: "4x4"},
			{P: 36, Pr: 6, Pc: 6, Label: "6x6"},
		},
		Ratio: 0.1,
		Seed:  3,
	}
}

// Experiments returns all measured experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{Table3(), Table4(), Table5()}
}

// Scale returns a copy of the experiment with every array size divided
// by factor (minimum 8), for quick runs and unit tests.
func (e Experiment) Scale(factor int) Experiment {
	if factor <= 1 {
		return e
	}
	sizes := make([]int, len(e.Sizes))
	for i, n := range e.Sizes {
		s := n / factor
		if s < 8 {
			s = 8
		}
		sizes[i] = s
	}
	e.Sizes = sizes
	return e
}

// Cell is one measurement: the two phase times of one scheme at one
// (p, n) point.
type Cell struct {
	Dist, Comp time.Duration // virtual clock
	WallDist   time.Duration
	WallComp   time.Duration
}

// Group is the block of rows for one processor configuration.
type Group struct {
	Spec  ProcSpec
	Cells map[string][]Cell // scheme name -> per-size cells
}

// Result is a fully-run experiment.
type Result struct {
	Exp    Experiment
	Params cost.Params
	Groups []Group
}

// newPartition builds the experiment's partition for one configuration.
func (e Experiment) newPartition(n int, ps ProcSpec) (partition.Partition, error) {
	switch e.Kind {
	case costmodel.RowPart:
		return partition.NewRow(n, n, ps.P)
	case costmodel.ColPart:
		return partition.NewCol(n, n, ps.P)
	case costmodel.MeshPart:
		return partition.NewMesh(n, n, ps.Pr, ps.Pc)
	default:
		return nil, fmt.Errorf("tables: unknown partition kind %v", e.Kind)
	}
}

// Run executes the experiment on the channel transport and returns the
// measured table. Every (scheme, p, n) cell is one full distribution of
// a fresh sparse array with the experiment's sparse ratio.
func (e Experiment) Run(params cost.Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Exp: e, Params: params}
	for _, ps := range e.Procs {
		group := Group{Spec: ps, Cells: map[string][]Cell{}}
		for _, n := range e.Sizes {
			g := sparse.UniformExact(n, n, e.Ratio, e.Seed+int64(n)*31+int64(ps.P))
			part, err := e.newPartition(n, ps)
			if err != nil {
				return nil, err
			}
			for _, s := range dist.Schemes() {
				m, err := machine.New(ps.P, machine.WithRecvTimeout(60*time.Second))
				if err != nil {
					return nil, err
				}
				r, err := s.Distribute(m, g, part, dist.Options{Method: e.Method})
				m.Close()
				if err != nil {
					return nil, fmt.Errorf("tables: %s %s p=%s n=%d: %w", e.Name, s.Name(), ps.Label, n, err)
				}
				bd := r.Breakdown
				group.Cells[s.Name()] = append(group.Cells[s.Name()], Cell{
					Dist:     bd.DistributionTime(params),
					Comp:     bd.CompressionTime(params),
					WallDist: bd.WallDistribution(),
					WallComp: bd.WallCompression(),
				})
			}
		}
		res.Groups = append(res.Groups, group)
	}
	return res, nil
}

// ms formats a duration as milliseconds with three decimals, like the
// paper's tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// Format renders the result in the paper's layout. If wall is true the
// wall-clock columns are shown instead of the virtual clock.
func (r *Result) Format(wall bool) string {
	var b strings.Builder
	clock := "virtual clock"
	if wall {
		clock = "wall clock"
	}
	fmt.Fprintf(&b, "%s: the data distribution and data compression time of the SFC, CFS and ED schemes (%s).\n", r.Exp.Name, r.Exp.Title)
	fmt.Fprintf(&b, "s = %g, %s, T_Startup=%v T_Data=%v T_Operation=%v\n",
		r.Exp.Ratio, clock, r.Params.TStartup, r.Params.TData, r.Params.TOperation)

	header := fmt.Sprintf("%-6s %-7s %-16s", "Procs", "Method", "Cost")
	for _, n := range r.Exp.Sizes {
		header += fmt.Sprintf(" %12s", fmt.Sprintf("%dx%d", n, n))
	}
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	for _, gr := range r.Groups {
		for _, scheme := range []string{"SFC", "CFS", "ED"} {
			cells := gr.Cells[scheme]
			for row := 0; row < 2; row++ {
				label := "T_Distribution"
				if row == 1 {
					label = "T_Compression"
				}
				procLabel := ""
				if scheme == "SFC" && row == 0 {
					procLabel = gr.Spec.Label
				}
				fmt.Fprintf(&b, "%-6s %-7s %-16s", procLabel, scheme, label)
				for _, c := range cells {
					v := c.Dist
					if wall {
						v = c.WallDist
					}
					if row == 1 {
						v = c.Comp
						if wall {
							v = c.WallComp
						}
					}
					fmt.Fprintf(&b, " %12s", ms(v))
				}
				b.WriteByte('\n')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("Time: ms\n")
	return b.String()
}

// RunN executes the experiment over several seeds and reports, per
// cell, the mean virtual times and the maximum relative deviation from
// the mean — quantifying how sensitive the tables are to the particular
// random array (the paper reports single runs).
func (e Experiment) RunN(params cost.Params, seeds []int64) (*Result, float64, error) {
	if len(seeds) == 0 {
		return nil, 0, fmt.Errorf("tables: RunN needs at least one seed")
	}
	var results []*Result
	for _, s := range seeds {
		ex := e
		ex.Seed = s
		r, err := ex.Run(params)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, r)
	}
	mean := results[0]
	maxDev := 0.0
	for gi := range mean.Groups {
		for scheme, cells := range mean.Groups[gi].Cells {
			for ci := range cells {
				var sumD, sumC float64
				for _, r := range results {
					c := r.Groups[gi].Cells[scheme][ci]
					sumD += float64(c.Dist)
					sumC += float64(c.Comp)
				}
				mD := sumD / float64(len(results))
				mC := sumC / float64(len(results))
				for _, r := range results {
					c := r.Groups[gi].Cells[scheme][ci]
					if mD > 0 {
						if d := abs(float64(c.Dist)-mD) / mD; d > maxDev {
							maxDev = d
						}
					}
					if mC > 0 {
						if d := abs(float64(c.Comp)-mC) / mC; d > maxDev {
							maxDev = d
						}
					}
				}
				cells[ci].Dist = time.Duration(mD)
				cells[ci].Comp = time.Duration(mC)
			}
		}
	}
	return mean, maxDev, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatCSV renders the result as CSV rows
// (table,procs,scheme,n,dist_ms,comp_ms,wall_dist_ms,wall_comp_ms) for
// external plotting.
func (r *Result) FormatCSV() string {
	var b strings.Builder
	b.WriteString("table,procs,scheme,n,dist_ms,comp_ms,wall_dist_ms,wall_comp_ms\n")
	for _, gr := range r.Groups {
		for _, scheme := range []string{"SFC", "CFS", "ED"} {
			for i, c := range gr.Cells[scheme] {
				fmt.Fprintf(&b, "%s,%s,%s,%d,%s,%s,%s,%s\n",
					r.Exp.Name, gr.Spec.Label, scheme, r.Exp.Sizes[i],
					ms(c.Dist), ms(c.Comp), ms(c.WallDist), ms(c.WallComp))
			}
		}
	}
	return b.String()
}

// PredictedTable evaluates the cost model over the same grid, producing
// the theoretical counterpart (Tables 1 and 2 instantiated): useful for
// comparing model vs measurement side by side.
func PredictedTable(e Experiment, params cost.Params) (*Result, error) {
	res := &Result{Exp: e, Params: params}
	for _, ps := range e.Procs {
		group := Group{Spec: ps, Cells: map[string][]Cell{}}
		for _, n := range e.Sizes {
			in := costmodel.Inputs{
				N: n, P: ps.P, Pr: ps.Pr, Pc: ps.Pc,
				S:    e.Ratio,
				Kind: e.Kind,
			}
			if e.Method == dist.CCS {
				in.Method = costmodel.CCS
			}
			for _, scheme := range []string{"SFC", "CFS", "ED"} {
				est, err := costmodel.Predict(scheme, in, params)
				if err != nil {
					return nil, err
				}
				group.Cells[scheme] = append(group.Cells[scheme], Cell{Dist: est.Distribution, Comp: est.Compression})
			}
		}
		res.Groups = append(res.Groups, group)
	}
	return res, nil
}
