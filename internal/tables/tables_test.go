package tables

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/costmodel"
)

func TestExperimentDefinitionsMatchPaperGrid(t *testing.T) {
	t3 := Table3()
	if t3.Kind != costmodel.RowPart || len(t3.Sizes) != 5 || t3.Sizes[4] != 2000 {
		t.Errorf("Table 3 definition wrong: %+v", t3)
	}
	t4 := Table4()
	if t4.Kind != costmodel.ColPart {
		t.Errorf("Table 4 kind = %v", t4.Kind)
	}
	t5 := Table5()
	if t5.Kind != costmodel.MeshPart || t5.Sizes[0] != 120 || t5.Procs[2].Pr != 6 {
		t.Errorf("Table 5 definition wrong: %+v", t5)
	}
	if t3.Ratio != 0.1 || t4.Ratio != 0.1 || t5.Ratio != 0.1 {
		t.Error("paper uses s = 0.1 everywhere")
	}
	if len(Experiments()) != 3 {
		t.Error("Experiments() should return 3 tables")
	}
}

func TestScale(t *testing.T) {
	e := Table3().Scale(10)
	if e.Sizes[0] != 20 || e.Sizes[4] != 200 {
		t.Errorf("scaled sizes = %v", e.Sizes)
	}
	tiny := Table3().Scale(1000)
	for _, n := range tiny.Sizes {
		if n < 8 {
			t.Errorf("scaled size %d below minimum", n)
		}
	}
	if same := Table3().Scale(1); same.Sizes[0] != 200 {
		t.Error("Scale(1) changed sizes")
	}
}

// TestTable3ScaledOrderings runs a shrunken Table 3 and checks the
// paper's §5.1 observations hold: ED < CFS < SFC on distribution,
// SFC < CFS < ED on compression, SFC best overall at the default
// T_Data/T_Op ratio.
func TestTable3ScaledOrderings(t *testing.T) {
	e := Table3().Scale(10) // 20..200, still 3 processor configs
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Groups))
	}
	for _, g := range res.Groups {
		for i := range e.Sizes {
			sfc, cfs, ed := g.Cells["SFC"][i], g.Cells["CFS"][i], g.Cells["ED"][i]
			if !(ed.Dist < cfs.Dist && cfs.Dist < sfc.Dist) {
				t.Errorf("p=%s n=%d: distribution ordering violated: SFC %v CFS %v ED %v",
					g.Spec.Label, e.Sizes[i], sfc.Dist, cfs.Dist, ed.Dist)
			}
			if !(sfc.Comp < cfs.Comp && cfs.Comp <= ed.Comp) {
				t.Errorf("p=%s n=%d: compression ordering violated: SFC %v CFS %v ED %v",
					g.Spec.Label, e.Sizes[i], sfc.Comp, cfs.Comp, ed.Comp)
			}
			if !(sfc.Dist+sfc.Comp < ed.Dist+ed.Comp) {
				t.Errorf("p=%s n=%d: SFC should win overall on row partition at ratio 1.2",
					g.Spec.Label, e.Sizes[i])
			}
		}
	}
}

// TestTable4ScaledOrderings checks the column partition observations:
// ED best overall, CFS second, SFC last (paper §5.2).
func TestTable4ScaledOrderings(t *testing.T) {
	e := Table4().Scale(10)
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for i := range e.Sizes {
			// The orderings are asymptotic: below the paper's smallest
			// n/p ratio the p·T_Startup and pointer-array overheads
			// dominate, so only assert in the paper-like regime.
			if e.Sizes[i] < 4*g.Spec.P {
				continue
			}
			sfc, cfs, ed := g.Cells["SFC"][i], g.Cells["CFS"][i], g.Cells["ED"][i]
			edTot, cfsTot, sfcTot := ed.Dist+ed.Comp, cfs.Dist+cfs.Comp, sfc.Dist+sfc.Comp
			if !(edTot < cfsTot && cfsTot < sfcTot) {
				t.Errorf("p=%s n=%d: column partition overall ordering violated: SFC %v CFS %v ED %v",
					g.Spec.Label, e.Sizes[i], sfcTot, cfsTot, edTot)
			}
		}
	}
}

// TestTable5ScaledOrderings checks the mesh partition observations:
// ED > CFS > SFC overall (paper §5.3).
func TestTable5ScaledOrderings(t *testing.T) {
	e := Table5().Scale(10)
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for i := range e.Sizes {
			if e.Sizes[i] < 4*g.Spec.P {
				continue // see TestTable4ScaledOrderings
			}
			sfc, cfs, ed := g.Cells["SFC"][i], g.Cells["CFS"][i], g.Cells["ED"][i]
			edTot, cfsTot, sfcTot := ed.Dist+ed.Comp, cfs.Dist+cfs.Comp, sfc.Dist+sfc.Comp
			if !(edTot < cfsTot && cfsTot < sfcTot) {
				t.Errorf("grid %s n=%d: mesh overall ordering violated: SFC %v CFS %v ED %v",
					g.Spec.Label, e.Sizes[i], sfcTot, cfsTot, edTot)
			}
		}
	}
}

func TestFormatContainsPaperStructure(t *testing.T) {
	e := Table3().Scale(25)
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(false)
	for _, want := range []string{"Table 3", "T_Distribution", "T_Compression", "SFC", "CFS", "ED", "Time: ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	wall := res.Format(true)
	if !strings.Contains(wall, "wall clock") {
		t.Error("wall format missing clock label")
	}
}

func TestPredictedTable(t *testing.T) {
	e := Table3().Scale(10)
	res, err := PredictedTable(e, cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// Predicted tables satisfy the same orderings.
	for _, g := range res.Groups {
		for i := range e.Sizes {
			sfc, cfs, ed := g.Cells["SFC"][i], g.Cells["CFS"][i], g.Cells["ED"][i]
			if !(ed.Dist < cfs.Dist && cfs.Dist < sfc.Dist) {
				t.Errorf("predicted distribution ordering violated at n=%d", e.Sizes[i])
			}
		}
	}
}

func TestRunNSeedStability(t *testing.T) {
	// The virtual clock is dominated by deterministic terms (sizes,
	// exact nnz); only s' varies with the seed, so cross-seed deviation
	// must be small.
	e := Table3().Scale(10) // sizes 20..200
	e.Procs = e.Procs[:1]   // p = 4 only, for speed
	mean, maxDev, err := e.RunN(cost.DefaultParams, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Only s' (the busiest rank's ratio) depends on the seed; at the
	// smallest size its effect peaks but stays bounded.
	if maxDev > 0.10 {
		t.Errorf("max relative deviation across seeds = %.3f, want < 0.10", maxDev)
	}
	if len(mean.Groups) != 1 {
		t.Errorf("groups = %d", len(mean.Groups))
	}
	if _, _, err := e.RunN(cost.DefaultParams, nil); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestFormatCSV(t *testing.T) {
	e := Table3().Scale(25)
	e.Procs = e.Procs[:1]
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	csv := res.FormatCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 3 schemes x 5 sizes.
	if len(lines) != 1+15 {
		t.Errorf("CSV has %d lines, want 16:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "table,procs,scheme,n,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 7 {
			t.Errorf("CSV row %q has wrong field count", l)
		}
	}
}

// TestFullPaperGridTable3 runs the complete Table 3 grid (n up to 2000,
// p up to 32) and asserts the paper's orderings at full scale. Skipped
// in -short mode (it runs the real distributions, ~10s).
func TestFullPaperGridTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper grid in -short mode")
	}
	e := Table3()
	res, err := e.Run(cost.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for i, n := range e.Sizes {
			sfc, cfs, ed := g.Cells["SFC"][i], g.Cells["CFS"][i], g.Cells["ED"][i]
			if !(ed.Dist < cfs.Dist && cfs.Dist < sfc.Dist) {
				t.Errorf("p=%s n=%d: distribution ordering violated", g.Spec.Label, n)
			}
			if !(sfc.Comp < cfs.Comp && cfs.Comp <= ed.Comp) {
				t.Errorf("p=%s n=%d: compression ordering violated", g.Spec.Label, n)
			}
			// Paper §5.1: SFC best overall on the row partition.
			if sfc.Dist+sfc.Comp >= ed.Dist+ed.Comp {
				t.Errorf("p=%s n=%d: SFC not best overall", g.Spec.Label, n)
			}
			// Rough factor check at the largest size: ED's distribution
			// advantage over SFC is about the wire ratio n²/(2n²s+n) ≈ 5x
			// at s = 0.1 (paper Table 3 shows 3.7x on the SP2).
			if n >= 1000 {
				ratio := float64(sfc.Dist) / float64(ed.Dist)
				if ratio < 3 || ratio > 8 {
					t.Errorf("p=%s n=%d: SFC/ED distribution ratio %.2f outside [3, 8]", g.Spec.Label, n, ratio)
				}
			}
		}
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	e := Table3().Scale(25)
	bad := cost.Params{TStartup: -1}
	if _, err := e.Run(bad); err == nil {
		t.Error("negative params accepted")
	}
}
