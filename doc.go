// Package repro is a Go reproduction of "Data Distribution Schemes of
// Sparse Arrays on Distributed Memory Multicomputers" (Lin, Chung, Liu,
// ICPP 2002): the SFC, CFS and ED distribution schemes, the partition
// methods and compression formats they compose with, an emulated
// distributed-memory multicomputer to run them on, the paper's
// closed-form cost model, and a benchmark harness regenerating every
// table in the paper's evaluation.
//
// The root package holds only the benchmark harness (bench_test.go);
// the library lives under internal/ — start at internal/core for the
// high-level API and see README.md, DESIGN.md and EXPERIMENTS.md.
package repro
