#!/bin/sh
# cluster_smoke.sh: kill-a-node survival test for the sparsedistd
# cluster. Boots three daemons gossiping over fast heartbeats, starts
# the cluster load generator (consistent-hash routing, idempotent
# client job IDs, circuit-breaker failover), SIGKILLs one node while
# the load is in flight, and requires the run to finish with zero lost
# and zero duplicated jobs, at least one observed failover or
# resubmission, and a survivor whose failure detector reports the dead
# peer. Finally SIGTERMs the survivors and requires clean drains.
# `make cluster-smoke` and CI run this.
set -eu

P1="${P1:-127.0.0.1:8561}"
P2="${P2:-127.0.0.1:8562}"
P3="${P3:-127.0.0.1:8563}"
U1="http://$P1"; U2="http://$P2"; U3="http://$P3"
BIN="${TMPDIR:-/tmp}/sparsedistd-cluster-smoke"

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/sparsedistd

# Fast failure detection so the kill is noticed well inside the load
# window: suspect after 400ms of silence, dead (ranges remap) at 1s.
HB="-hb-interval 100ms -suspect-after 400ms -dead-after 1s"

start_node() { # addr node-id peers...
  addr="$1"; id="$2"; peers="$3"
  # shellcheck disable=SC2086
  "$BIN" -addr "$addr" -node-id "$id" -peers "$peers" $HB \
    -queue 64 -workers 4 &
}

start_node "$P1" n1 "$U2,$U3"; PID1=$!
start_node "$P2" n2 "$U1,$U3"; PID2=$!
start_node "$P3" n3 "$U1,$U2"; PID3=$!
trap 'kill "$PID1" "$PID2" "$PID3" 2>/dev/null || true' EXIT

# Readiness: every node must answer a one-job probe.
for u in "$U1" "$U2" "$U3"; do
  i=0
  until "$BIN" -loadgen -target "$u" -jobs 1 -clients 1 -n 32 >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "cluster-smoke: daemon never became healthy on $u" >&2
      exit 1
    fi
    sleep 0.1
  done
done

# Load in the background: 90 jobs over 8 clients, 12 distinct plan
# keys per scheme (-spread) so the doomed node owns some hash ranges.
# n=2048 sizes each job at a few hundred milliseconds, keeping the run
# in flight for several seconds so the kill lands mid-load. The
# assertions make a silent non-failover run a failure: at least one
# failover/resubmission must happen and a survivor must report >=1
# dead peer.
"$BIN" -loadgen -targets "$U1,$U2,$U3" \
  -jobs 90 -clients 8 -schemes SFC,CFS,ED -n 2048 -spread 12 -procs 4 \
  -assert-metrics -assert-failover -assert-dead-nodes 1 &
LG=$!

# Kill n3 mid-load with SIGKILL — no drain, no goodbye: connections
# die, its hash ranges must remap to n1/n2 via the failure detector.
sleep 1
kill -9 "$PID3"
wait "$PID3" 2>/dev/null || true
echo "cluster-smoke: SIGKILLed n3 ($PID3) mid-load"

if ! wait "$LG"; then
  echo "cluster-smoke: loadgen failed after node kill" >&2
  exit 1
fi

# Graceful drain of the survivors: SIGTERM must exit zero.
kill -TERM "$PID1" "$PID2"
wait "$PID1"
wait "$PID2"
trap - EXIT
echo "cluster-smoke: OK (node killed, zero lost, zero duplicated)"
