#!/bin/sh
# serve_smoke.sh: end-to-end smoke of the sparsedistd daemon. Builds
# the binary, starts it, drives it with the built-in load generator
# across all three schemes with metrics assertions (counters moved,
# plan cache hit, machines reused), then SIGTERMs it and requires a
# clean graceful drain. `make serve-smoke` and CI run this.
set -eu

ADDR="${ADDR:-127.0.0.1:8477}"
BIN="${TMPDIR:-/tmp}/sparsedistd-smoke"

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/sparsedistd

"$BIN" -addr "$ADDR" -queue 32 -workers 4 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Readiness: a one-job probe doubles as the health check.
i=0
until "$BIN" -loadgen -target "http://$ADDR" -jobs 1 -clients 1 -n 32 >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "serve-smoke: daemon never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

"$BIN" -loadgen -target "http://$ADDR" \
  -jobs 9 -clients 3 -schemes SFC,CFS,ED -n 96 -procs 4 -assert-metrics

# Graceful drain: SIGTERM must finish accepted jobs and exit zero.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "serve-smoke: OK"
