#!/bin/sh
# compute_smoke.sh: end-to-end smoke of the distributed compute layer.
# Runs every op through the CLI with its sequential oracle, then boots
# the daemon with refiner persistence, drives op-carrying jobs through
# the load generator (ops executed, comm-plan cache hit, traffic
# counters moved), SIGTERMs it and requires both a clean drain and the
# persisted refiner state on disk. `make compute-smoke` and CI run this.
set -eu

ADDR="${ADDR:-127.0.0.1:8478}"
BIN="${TMPDIR:-/tmp}/sparsedistd-compute-smoke"
CLI="${TMPDIR:-/tmp}/sparsedist-compute-smoke"
STATE="${TMPDIR:-/tmp}/compute-smoke-refine.json"

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/sparsedistd
go build -o "$CLI" ./cmd/sparsedist
rm -f "$STATE"

# CLI: every op against its sequential oracle (verify is on by default).
"$CLI" -n 96 -scheme ED -partition row -procs 4 -op spmv >/dev/null
"$CLI" -n 96 -scheme CFS -partition row -procs 4 -op jacobi >/dev/null
"$CLI" -n 64 -scheme SFC -partition mesh -mesh 2x2 -op spgemm >/dev/null
echo "compute-smoke: CLI ops OK"

"$BIN" -addr "$ADDR" -queue 32 -workers 4 -refine-state "$STATE" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Readiness: a one-job probe doubles as the health check.
i=0
until "$BIN" -loadgen -target "http://$ADDR" -jobs 1 -clients 1 -n 32 >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "compute-smoke: daemon never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

for op in spmv jacobi spgemm; do
  "$BIN" -loadgen -target "http://$ADDR" \
    -jobs 6 -clients 2 -schemes SFC,CFS,ED -n 64 -procs 4 \
    -op "$op" -assert-ops
done

# Graceful drain: SIGTERM must finish accepted jobs, persist the
# refiner state and exit zero.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
if [ ! -s "$STATE" ]; then
  echo "compute-smoke: drained daemon left no refiner state at $STATE" >&2
  exit 1
fi
rm -f "$STATE"
echo "compute-smoke: OK"
