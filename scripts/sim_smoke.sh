#!/bin/sh
# sim_smoke.sh: end-to-end smoke of the network timing engine through
# the sparsedist CLI. For every scheme it runs the same distribution
# twice on a mesh and on a bandwidth-starved star and requires (a) the
# deterministic network-model section of the report to be byte-identical
# across runs, and (b) the congested star to show non-zero link
# utilization. `make sim-smoke` and CI run this.
set -eu

BIN="${TMPDIR:-/tmp}/sparsedist-smoke"
OUT="${TMPDIR:-/tmp}/sim-smoke.$$"
mkdir -p "$OUT"
trap 'rm -rf "$OUT"' EXIT

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/sparsedist

# netsection extracts the deterministic tail of the report: everything
# from the network model header on (virtual times, link table). Wall
# timings above it legitimately vary run to run.
netsection() {
  sed -n '/^network model:/,$p' "$1"
}

for scheme in SFC CFS ED; do
  for topo in "mesh" "star -link-bw 1000000"; do
    # shellcheck disable=SC2086 — $topo intentionally splits into flags.
    "$BIN" -scheme "$scheme" -n 200 -procs 4 -topology $topo >"$OUT/a.txt"
    "$BIN" -scheme "$scheme" -n 200 -procs 4 -topology $topo >"$OUT/b.txt"
    netsection "$OUT/a.txt" >"$OUT/a.net"
    netsection "$OUT/b.txt" >"$OUT/b.net"
    if [ ! -s "$OUT/a.net" ]; then
      echo "sim-smoke: $scheme/$topo: report has no network model section" >&2
      exit 1
    fi
    if ! cmp -s "$OUT/a.net" "$OUT/b.net"; then
      echo "sim-smoke: $scheme/$topo: network section differs across identical runs" >&2
      diff "$OUT/a.net" "$OUT/b.net" >&2 || true
      exit 1
    fi
  done
  # The starved star must show busy links: some utilization figure in
  # the link table above zero.
  if ! grep -Eq ' (100|[1-9][0-9]?)\.[0-9]+%' "$OUT/a.net"; then
    echo "sim-smoke: $scheme: congested star shows no link utilization" >&2
    cat "$OUT/a.net" >&2
    exit 1
  fi
done
echo "sim-smoke: OK"
