#!/bin/sh
# auto_smoke.sh: end-to-end smoke of the scheme=auto tuning loop.
# Builds sparsedistd, starts it, drives it with the load generator
# rotating AUTO in with the explicit schemes, and asserts the loop
# closed: auto jobs resolved plans, the refiner folded predicted-vs-
# actual observations in, and the /metrics prediction-error gauges
# settled below 1 under the repeated shapes. Also checks the CLI's
# -scheme auto path prints its chosen plan and passes the differential
# oracle. `make auto-smoke` and CI run this.
set -eu

ADDR="${ADDR:-127.0.0.1:8487}"
BIN="${TMPDIR:-/tmp}/sparsedistd-auto-smoke"
CLI="${TMPDIR:-/tmp}/sparsedist-auto-smoke"

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/sparsedistd
go build -o "$CLI" ./cmd/sparsedist

# CLI path: auto must pick a plan, report it, and survive both oracles.
"$CLI" -n 200 -ratio 0.1 -scheme auto -procs 4 -check | grep -q "auto-selected:" || {
  echo "auto-smoke: sparsedist -scheme auto printed no auto-selected line" >&2
  exit 1
}

"$BIN" -addr "$ADDR" -queue 32 -workers 4 -refine-alpha 0.25 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Readiness: a one-job probe doubles as the health check.
i=0
until "$BIN" -loadgen -target "http://$ADDR" -jobs 1 -clients 1 -n 32 >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "auto-smoke: daemon never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# Repeated shapes (spread 1, shared seed) make the workload stationary,
# so the refiner must converge; -assert-auto enforces it from /metrics.
"$BIN" -loadgen -target "http://$ADDR" \
  -jobs 30 -clients 3 -schemes SFC,CFS,ED,AUTO -n 96 -procs 4 \
  -assert-metrics -assert-auto

# The gauges themselves, straight off the wire.
curl -sf "http://$ADDR/metrics" | grep -q "sparsedistd_auto_prediction_error" || {
  echo "auto-smoke: /metrics exposes no auto prediction-error gauges" >&2
  exit 1
}

# Graceful drain: SIGTERM must finish accepted jobs and exit zero.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "auto-smoke: OK"
