# Convenience targets for the sparsedist reproduction.

GO ?= go

.PHONY: all build test test-race lint fuzz-smoke check-diff bench bench-json bench-compare bench-stream bench-sim bench-ops bench-all tables examples serve-smoke cluster-smoke compute-smoke sim-smoke auto-smoke sim-remarks verify ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Lint gate: formatting, vet, and staticcheck when installed (CI
# installs it; locally it is optional and skipped if absent).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

# Short fuzz pass over the wire decoders (go-native fuzzing runs one
# target per invocation, so each gets its own line).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodePartCFS -fuzztime 10s ./internal/compress/
	$(GO) test -run '^$$' -fuzz FuzzDecodePartED -fuzztime 10s ./internal/compress/
	$(GO) test -run '^$$' -fuzz FuzzDiffDistribute -fuzztime 10s ./internal/core/

# The differential correctness harness at full size: >= 200 adversarial
# arrays through every scheme x partition x method combination, direct,
# degraded and killed-rank engine paths, invariant checks on the hot
# path and the element-wise reassembly oracle on every result; then an
# extended run of the end-to-end differential fuzz target.
check-diff:
	$(GO) test -run 'TestDiffSweep' -count=1 -v ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzDiffDistribute -fuzztime 2m ./internal/core/

# What CI runs: lint, build, the full test suite, and a race-detector
# pass over the concurrency-heavy packages.
ci: lint
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/machine/... ./internal/dist/... ./internal/server/... ./internal/client/... ./internal/cluster/... ./internal/calibrate/... ./internal/costmodel/... ./internal/spops/...

# Trajectory benchmarks: the BenchmarkRootEncode family plus the
# streaming-vs-materializing pair (with its peak-MB memory metric),
# snapshotted (ns/op, allocs/op, virtual-clock and peak-heap metrics)
# into a dated JSON file for cross-commit comparison.
BENCH_PATTERN = BenchmarkRootEncode|BenchmarkStreamDistribute|BenchmarkSimnetEvents|BenchmarkSpMV$$|BenchmarkDistSpGEMM
bench: bench-json

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_$$(date +%F).json

# Diff a fresh snapshot against the committed baseline; exits non-zero
# when anything regressed more than THRESHOLD (fractional). CI runs
# this as an enforcing gate.
BASELINE ?= BENCH_2026-08-08.json
THRESHOLD ?= 0.15
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(THRESHOLD) $(BASELINE) /tmp/bench_new.json

# Out-of-core memory gate: run the streaming-vs-materializing pair on
# the >=10M-nonzero input, snapshot it with the peak-MB metric, and
# assert the streaming path's peak heap is at most half the
# materializing path's while staying within 10% of its ns/op.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStreamDistribute' -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_stream.json
	$(GO) run ./cmd/benchjson -ratio -metric peak-MB -max 0.5 /tmp/bench_stream.json \
		BenchmarkStreamDistribute/streaming BenchmarkStreamDistribute/materializing
	$(GO) run ./cmd/benchjson -ratio -metric ns_per_op -max 1.10 /tmp/bench_stream.json \
		BenchmarkStreamDistribute/streaming BenchmarkStreamDistribute/materializing

# Network-model overhead gate: attaching the simnet recorder plus a
# full replay must stay within 10% of the counters-only path.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkSimnetEvents' -benchtime=50x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_sim.json
	$(GO) run ./cmd/benchjson -ratio -metric ns_per_op -max 1.10 /tmp/bench_sim.json \
		BenchmarkSimnetEvents/simnet-uniform BenchmarkSimnetEvents/counter

# Compute-layer traffic gate: on a banded array (s <= 0.1) the halo
# exchange must move strictly fewer wire words than broadcasting the
# operand, for both SpMV (x vector) and SpGEMM (the whole B array).
bench-ops:
	$(GO) test -run '^$$' -bench 'BenchmarkSpMV$$|BenchmarkDistSpGEMM' -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_ops.json
	$(GO) run ./cmd/benchjson -ratio -metric wire-words -max 0.95 /tmp/bench_ops.json \
		BenchmarkSpMV/halo BenchmarkSpMV/broadcast
	$(GO) run ./cmd/benchjson -ratio -metric wire-words -max 0.95 /tmp/bench_ops.json \
		BenchmarkDistSpGEMM/rowfetch BenchmarkDistSpGEMM/broadcast

# Full benchmark harness (one bench per paper table + ablations).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Tables 3-5 at full size, plus predictions.
tables:
	$(GO) run ./cmd/tables -predicted

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/spmv
	$(GO) run ./examples/advisor
	$(GO) run ./examples/cg
	$(GO) run ./examples/redistribute
	$(GO) run ./examples/ekmr3d
	$(GO) run ./examples/pagerank

# End-to-end daemon smoke: build sparsedistd, serve, load-generate
# across all three schemes with metrics assertions, SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Kill-a-node survival: boot a 3-daemon cluster, SIGKILL one node
# mid-load, require zero lost / zero duplicated jobs plus observed
# failover and dead-peer detection, then drain the survivors.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Auto-tuning smoke: sparsedist -scheme auto picks and reports a plan
# that survives the differential oracle, then a daemon under loadgen
# (AUTO rotated with the explicit schemes) must resolve plans, fold
# predicted-vs-actual observations into the refiner, and settle the
# /metrics prediction-error gauges below 1.
auto-smoke:
	./scripts/auto_smoke.sh

# Compute-layer smoke: every op through the CLI with its sequential
# oracle, then op-carrying jobs through the daemon under loadgen with
# ops metrics assertions, plus refiner-state persistence across the
# drain.
compute-smoke:
	./scripts/compute_smoke.sh

# Network timing engine smoke: every scheme twice on a mesh and a
# bandwidth-starved star; the network-model report section must be
# byte-identical across runs and the starved star must show busy links.
sim-smoke:
	./scripts/sim_smoke.sh

# The documented Remark-flip regime (EXPERIMENTS.md "Remarks under
# contention"): flat model picks SFC, a 1e6 words/s star picks ED.
sim-remarks:
	$(GO) run ./cmd/costmodel -n 400 -p 4 -s 0.1 -partition row
	$(GO) run ./cmd/costmodel -n 400 -p 4 -s 0.1 -partition row \
		-topology star -link-bw 1000000

# The artefacts recorded in the repository.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
