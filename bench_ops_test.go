package repro

// Benchmarks of the sparsity-aware distributed compute layer
// (internal/spops) against the root-broadcast kernels it replaces.
// Each sub-benchmark attaches a wire-words metric — the payload words
// the op moves per sweep — and `make bench-ops` gates the ratio: on a
// banded array (sparse column support, s <= 0.1) the halo exchange
// must move strictly fewer words than broadcasting the operand.

import (
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/spops"
)

// benchOpsSetup distributes a banded array (bandwidth 8, fill 0.8, so
// s ≈ 0.05) over p row parts with ED and builds the halo plan. Banded
// structure is the regime the compute layer targets: each part's
// column support covers only its band, so the needed-index sets stay
// small.
func benchOpsSetup(b *testing.B, n, p int) (*sparse.Dense, *machine.Machine, partition.Partition, *dist.Result, *spops.CommPlan) {
	b.Helper()
	g := sparse.Banded(n, n, 8, 0.8, 3)
	part, err := partition.NewRow(n, n, p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(p, machine.WithRecvTimeout(60*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	res, err := (dist.ED{}).Distribute(m, g, part, dist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := spops.BuildCommPlan(part, res)
	if err != nil {
		b.Fatal(err)
	}
	return g, m, part, res, pl
}

// BenchmarkSpMV compares halo-exchange y = A·x with the root-broadcast
// kernel on the same distributed banded array. The halo side's
// wire-words is what the op actually moved (halo + result gather); the
// broadcast side's is the full x vector to every peer rank plus the
// gathered y, the traffic DistributedSpMV moves regardless of
// sparsity.
func BenchmarkSpMV(b *testing.B) {
	const n, p = 256, 4
	g, m, part, res, pl := benchOpsSetup(b, n, p)
	x := make([]float64, g.Cols())
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.Run("halo", func(b *testing.B) {
		var last spops.OpStats
		for i := 0; i < b.N; i++ {
			_, st, err := spops.SpMV(m, pl, x)
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.ReportMetric(float64(last.WireWords), "wire-words")
	})
	b.Run("broadcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.DistributedSpMV(m, part, res, x); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*(p-1)+n), "wire-words")
	})
}

// BenchmarkDistSpGEMM compares row-fetch C = A·B (each rank pulls only
// the B-rows its local A-part references) with shipping all of B to
// every rank, the dense alternative. The broadcast side really moves
// the bytes — one triplet payload to each peer over the same machine —
// so its time and words are measured, not estimated.
func BenchmarkDistSpGEMM(b *testing.B) {
	const n, p = 256, 4
	g, m, _, _, pl := benchOpsSetup(b, n, p)
	bm := compress.CompressCRS(g, nil)
	b.Run("rowfetch", func(b *testing.B) {
		var last spops.OpStats
		for i := 0; i < b.N; i++ {
			_, st, err := spops.DistSpGEMM(m, pl, bm)
			if err != nil {
				b.Fatal(err)
			}
			last = st
		}
		b.ReportMetric(float64(last.WireWords), "wire-words")
	})
	b.Run("broadcast", func(b *testing.B) {
		// B as the (row, col, value) triplets the wire format uses.
		payload := make([]float64, 0, 3*bm.NNZ())
		for i := 0; i < bm.Rows; i++ {
			for q := bm.RowPtr[i]; q < bm.RowPtr[i+1]; q++ {
				payload = append(payload, float64(i), float64(bm.ColIdx[q]), bm.Val[q])
			}
		}
		for i := 0; i < b.N; i++ {
			err := m.Run(func(pr *machine.Proc) error {
				var in []float64
				if pr.Rank == 0 {
					in = payload
				}
				_, err := pr.Bcast(0, in)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(3*bm.NNZ()*(p-1)), "wire-words")
	})
}
