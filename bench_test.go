// Benchmark harness regenerating the paper's evaluation (one bench per
// table, plus kernel and ablation benches). Wall-clock ns/op is the Go
// benchmark's own measurement of a full distribution; the paper-shaped
// numbers are attached as custom metrics:
//
//	vdist-ms  virtual T_Distribution (paper Tables 3-5 columns)
//	vcomp-ms  virtual T_Compression
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable3 -benchtime=3x   # one table, quick
//
// The full paper grid (n up to 2000, p up to 36) is exercised by
// cmd/tables; benches use a representative sub-grid so `go test -bench=.`
// finishes in minutes.
package repro

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/redist"
	"repro/internal/sparse"
)

// benchGrid is the (n, p) sub-grid used by the table benches.
var benchGrid = []struct {
	n, p int
}{
	{200, 4},
	{400, 4},
	{800, 4},
	{400, 16},
	{800, 16},
}

// meshGrid is the sub-grid for Table 5 (mesh sizes from the paper).
var meshGrid = []struct {
	n, pr, pc int
}{
	{240, 2, 2},
	{480, 2, 2},
	{480, 4, 4},
	{960, 4, 4},
}

func benchDistribute(b *testing.B, g *sparse.Dense, part partition.Partition, scheme dist.Scheme, method dist.Method) {
	b.Helper()
	params := cost.DefaultParams
	var last *dist.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(part.NumParts(), machine.WithRecvTimeout(60*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		last, err = scheme.Distribute(m, g, part, dist.Options{Method: method})
		m.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bd := last.Breakdown
	b.ReportMetric(float64(bd.DistributionTime(params))/1e6, "vdist-ms")
	b.ReportMetric(float64(bd.CompressionTime(params))/1e6, "vcomp-ms")
}

// BenchmarkTable3 reproduces Table 3: row partition + CRS, s = 0.1.
func BenchmarkTable3(b *testing.B) {
	for _, gp := range benchGrid {
		g := sparse.UniformExact(gp.n, gp.n, 0.1, int64(gp.n))
		part, err := partition.NewRow(gp.n, gp.n, gp.p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range dist.Schemes() {
			b.Run(fmt.Sprintf("%s/p=%d/n=%d", s.Name(), gp.p, gp.n), func(b *testing.B) {
				benchDistribute(b, g, part, s, dist.CRS)
			})
		}
	}
}

// BenchmarkTable4 reproduces Table 4: column partition + CRS, s = 0.1.
func BenchmarkTable4(b *testing.B) {
	for _, gp := range benchGrid {
		g := sparse.UniformExact(gp.n, gp.n, 0.1, int64(gp.n)+1)
		part, err := partition.NewCol(gp.n, gp.n, gp.p)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range dist.Schemes() {
			b.Run(fmt.Sprintf("%s/p=%d/n=%d", s.Name(), gp.p, gp.n), func(b *testing.B) {
				benchDistribute(b, g, part, s, dist.CRS)
			})
		}
	}
}

// BenchmarkTable5 reproduces Table 5: 2D mesh partition + CRS, s = 0.1.
func BenchmarkTable5(b *testing.B) {
	for _, gp := range meshGrid {
		g := sparse.UniformExact(gp.n, gp.n, 0.1, int64(gp.n)+2)
		part, err := partition.NewMesh(gp.n, gp.n, gp.pr, gp.pc)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range dist.Schemes() {
			b.Run(fmt.Sprintf("%s/grid=%dx%d/n=%d", s.Name(), gp.pr, gp.pc, gp.n), func(b *testing.B) {
				benchDistribute(b, g, part, s, dist.CRS)
			})
		}
	}
}

// BenchmarkTable1Kernels benchmarks the primitive operations whose unit
// costs Table 1 composes: CRS compression, CFS packing/unpacking and ED
// encoding/decoding of one 250x1000 local piece at s = 0.1.
func BenchmarkTable1Kernels(b *testing.B) {
	g := sparse.UniformExact(1000, 1000, 0.1, 5)
	local := g.SubMatrix(0, 0, 250, 1000)

	b.Run("CompressCRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.CompressCRS(local, nil)
		}
	})
	crs := compress.CompressCRS(local, nil)
	b.Run("PackCRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.PackCRS(crs, nil)
		}
	})
	packed := compress.PackCRS(crs, nil)
	b.Run("UnpackCRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compress.UnpackCRS(packed, 250, 1000, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EncodeED", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.EncodeEDRect(g, 0, 0, 250, 1000, compress.RowMajor, nil)
		}
	})
	buf := compress.EncodeEDRect(g, 0, 0, 250, 1000, compress.RowMajor, nil)
	b.Run("DecodeED", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compress.DecodeEDToCRS(buf, 250, 1000, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2Kernels is the CCS counterpart (Table 2): compression
// with index conversion, as the row partition + CCS combination needs.
func BenchmarkTable2Kernels(b *testing.B) {
	g := sparse.UniformExact(1000, 1000, 0.1, 6)
	local := g.SubMatrix(250, 0, 250, 1000)

	b.Run("CompressCCS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.CompressCCS(local, nil)
		}
	})
	buf := compress.EncodeEDRect(g, 250, 0, 250, 1000, compress.ColMajor, nil)
	b.Run("DecodeEDWithConversion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compress.DecodeEDToCCS(buf, 250, 1000, 250, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ccs := compress.CompressCCSPartGlobal(g.At, rangeInts(250, 500), rangeInts(0, 1000), nil)
	packed := compress.PackCCS(ccs, nil)
	b.Run("UnpackCCSWithShift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := compress.UnpackCCS(packed, 250, 1000, nil)
			if err != nil {
				b.Fatal(err)
			}
			m.ShiftRows(250, nil)
		}
	})
}

// BenchmarkAblationTransport compares the channel transport against real
// localhost TCP for the same ED distribution (DESIGN.md ablation).
func BenchmarkAblationTransport(b *testing.B) {
	g := sparse.UniformExact(400, 400, 0.1, 7)
	part, err := partition.NewRow(400, 400, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("chan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := machine.New(4, machine.WithRecvTimeout(60*time.Second))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := (dist.ED{}).Distribute(m, g, part, dist.Options{}); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
	b.Run("tcp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := machine.NewTCPTransport(4)
			if err != nil {
				b.Fatal(err)
			}
			m, err := machine.New(4, machine.WithTransport(tr), machine.WithRecvTimeout(60*time.Second))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := (dist.ED{}).Distribute(m, g, part, dist.Options{}); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
}

// BenchmarkAblationSparseRatio sweeps s to locate the wall-clock
// crossover between SFC and ED that Remark 5 predicts: as s grows, ED's
// wire savings shrink while its decode cost grows.
func BenchmarkAblationSparseRatio(b *testing.B) {
	part, err := partition.NewCol(400, 400, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		g := sparse.UniformExact(400, 400, s, 8)
		for _, scheme := range []dist.Scheme{dist.SFC{}, dist.ED{}} {
			b.Run(fmt.Sprintf("%s/s=%g", scheme.Name(), s), func(b *testing.B) {
				benchDistribute(b, g, part, scheme, dist.CRS)
			})
		}
	}
}

// BenchmarkAblationCFSConvert compares the paper's receiver-side index
// conversion against the convert-at-root variant on a mesh partition
// (where conversion is needed, Case 3.2.3).
func BenchmarkAblationCFSConvert(b *testing.B) {
	g := sparse.UniformExact(480, 480, 0.1, 10)
	part, err := partition.NewMesh(480, 480, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, atRoot := range []bool{false, true} {
		name := "receiver-side"
		if atRoot {
			name = "root-side"
		}
		b.Run(name, func(b *testing.B) {
			params := cost.DefaultParams
			var last *dist.Result
			for i := 0; i < b.N; i++ {
				m, err := machine.New(4, machine.WithRecvTimeout(60*time.Second))
				if err != nil {
					b.Fatal(err)
				}
				last, err = (dist.CFS{}).Distribute(m, g, part, dist.Options{CFSConvertAtRoot: atRoot})
				m.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Breakdown.DistributionTime(params))/1e6, "vdist-ms")
		})
	}
}

// BenchmarkRedistribute measures direct row->mesh redistribution against
// a fresh ED distribution onto the mesh (the naive root path, without
// even charging the gather it would also need).
func BenchmarkRedistribute(b *testing.B) {
	g := sparse.UniformExact(480, 480, 0.1, 11)
	row, _ := partition.NewRow(480, 480, 4)
	mesh, _ := partition.NewMesh(480, 480, 2, 2)

	b.Run("direct-alltoall", func(b *testing.B) {
		params := cost.DefaultParams
		m, err := machine.New(4, machine.WithRecvTimeout(60*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		src, err := (dist.ED{}).Distribute(m, g, row, dist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var virt time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, stats, err := redist.Redistribute(m, row, src, mesh)
			if err != nil {
				b.Fatal(err)
			}
			virt = stats.Time(params)
		}
		b.StopTimer()
		b.ReportMetric(float64(virt)/1e6, "vredist-ms")
	})
	b.Run("via-root", func(b *testing.B) {
		params := cost.DefaultParams
		var last *dist.Result
		for i := 0; i < b.N; i++ {
			m, err := machine.New(4, machine.WithRecvTimeout(60*time.Second))
			if err != nil {
				b.Fatal(err)
			}
			last, err = (dist.ED{}).Distribute(m, g, mesh, dist.Options{})
			m.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.Breakdown.DistributionTime(params)+last.Breakdown.CompressionTime(params))/1e6, "vredist-ms")
	})
}

// BenchmarkAblationEDOverlap compares the sequential ED root loop with
// the pipelined variant over the TCP transport, where send time is real
// enough to hide encoding behind.
func BenchmarkAblationEDOverlap(b *testing.B) {
	g := sparse.UniformExact(800, 800, 0.1, 13)
	part, _ := partition.NewRow(800, 800, 4)
	for _, overlap := range []bool{false, true} {
		name := "sequential"
		if overlap {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := machine.NewTCPTransport(4)
				if err != nil {
					b.Fatal(err)
				}
				m, err := machine.New(4, machine.WithTransport(tr), machine.WithRecvTimeout(60*time.Second))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := (dist.ED{}).Distribute(m, g, part, dist.Options{EDOverlap: overlap}); err != nil {
					b.Fatal(err)
				}
				m.Close()
			}
		})
	}
}

// BenchmarkCompressFormats compares the three local compression formats
// on the same array (JDS rounds out the paper's future-work direction 1).
func BenchmarkCompressFormats(b *testing.B) {
	g := sparse.UniformExact(1000, 1000, 0.1, 12)
	b.Run("CRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.CompressCRS(g, nil)
		}
	})
	b.Run("CCS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.CompressCCS(g, nil)
		}
	})
	b.Run("JDS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compress.CompressJDS(g, nil)
		}
	})
}

// BenchmarkDistributedSpMV measures the downstream kernel the
// distribution exists to serve, across the three local formats.
func BenchmarkDistributedSpMV(b *testing.B) {
	g := sparse.UniformExact(800, 800, 0.1, 9)
	crs := compress.CompressCRS(g, nil)
	ccs := compress.CompressCCS(g, nil)
	jds := compress.CompressJDS(g, nil)
	x := make([]float64, 800)
	for i := range x {
		x[i] = float64(i)
	}
	b.Run("local-CRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.SpMV(crs, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("local-CCS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.SpMVCCS(ccs, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("local-JDS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.SpMVJDS(jds, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeshSpMV compares the communicator-based 2-D SpMV (x blocks
// broadcast down grid columns, partials reduced across rows) with the
// root-centric full-vector broadcast on the same mesh-distributed array.
func BenchmarkMeshSpMV(b *testing.B) {
	g := sparse.UniformExact(480, 480, 0.1, 14)
	mesh, err := partition.NewMesh(480, 480, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(4, machine.WithRecvTimeout(60*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	res, err := (dist.ED{}).Distribute(m, g, mesh, dist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 480)
	for i := range x {
		x[i] = float64(i)
	}
	b.Run("grid-comms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.MeshSpMV(m, mesh, res, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("root-broadcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.DistributedSpMV(m, mesh, res, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRootEncode is the root-pipeline trajectory benchmark: one
// full distribution at n=800, p=16 for every scheme, with the
// strictly sequential root loop (workers=1) and the full worker pool
// (workers=GOMAXPROCS, skipped on single-CPU hosts where the two are
// the same configuration). The virtual metrics must be identical
// across worker counts — only ns/op and allocs/op may move. `make
// bench` snapshots this family into BENCH_<date>.json.
func BenchmarkRootEncode(b *testing.B) {
	const n, p = 800, 16
	g := sparse.UniformExact(n, n, 0.1, 15)
	part, err := partition.NewRow(n, n, p)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if gmp := runtime.GOMAXPROCS(0); gmp > 1 {
		workerCounts = append(workerCounts, gmp)
	}
	for _, s := range dist.Schemes() {
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", s.Name(), w), func(b *testing.B) {
				params := cost.DefaultParams
				var last *dist.Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := machine.New(p, machine.WithRecvTimeout(60*time.Second))
					if err != nil {
						b.Fatal(err)
					}
					last, err = s.Distribute(m, g, part, dist.Options{Workers: w})
					m.Close()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				bd := last.Breakdown
				b.ReportMetric(float64(bd.DistributionTime(params))/1e6, "vdist-ms")
				b.ReportMetric(float64(bd.CompressionTime(params))/1e6, "vcomp-ms")
			})
		}
	}
}

// BenchmarkRootEncodeBuffer isolates the wire-buffer pool's effect on
// the ED encode kernel: a fresh buffer per part versus reuse through
// machine.GetBuf/PutBuf (the pipeline's steady state).
func BenchmarkRootEncodeBuffer(b *testing.B) {
	const n = 800
	g := sparse.UniformExact(n, n, 0.1, 16)
	rows, cols := rangeInts(0, n/16), rangeInts(0, n)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			compress.EncodeEDPart(g.At, rows, cols, compress.RowMajor, nil)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := compress.EncodeEDPartInto(g.At, rows, cols, compress.RowMajor, machine.GetBuf(0), nil)
			machine.PutBuf(buf)
		}
	})
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// benchHeapPeak runs fn b.N times under a HeapAlloc high-water sampler
// and returns the peak in MiB. ReadMemStats is a stop-the-world probe,
// so the 2ms period is coarse but cheap next to the multi-second ops
// this helper wraps. A GC before the timer starts keeps the previous
// sub-benchmark's garbage out of this one's high-water mark, and the
// GC headroom is halved for the duration — under the default 100% a
// churn-heavy allocation profile rides HeapAlloc to twice its live
// set, so the high-water mark would measure collector laziness as
// much as footprint. The same policy applies to every path measured
// through this helper, so ratios stay apples to apples.
func benchHeapPeak(b *testing.B, fn func() error) float64 {
	b.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(50))
	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				old := peak.Load()
				if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	return float64(peak.Load()) / (1 << 20)
}

// BenchmarkStreamDistribute pits the out-of-core streaming engine
// against the materializing engine on the same >=10M-nonzero input:
// n=12288 at ~6.7% density (10,066,330 entries), ED/CRS over a row
// partition on p=8. Both sub-benches consume an identical chunked
// source end to end — the materializing one pays the Materialize step
// (a 1.2 GiB dense array) that the streaming path exists to avoid —
// and attach the process heap high-water mark as "peak-MB". `make
// bench-stream` snapshots this pair and gates streaming peak-MB at
// <= 50% of materializing with ns/op within 10%.
func BenchmarkStreamDistribute(b *testing.B) {
	const (
		n   = 12288
		p   = 8
		nnz = 10_066_330 // ~0.067 * n * n
	)
	part, err := partition.NewRow(n, n, p)
	if err != nil {
		b.Fatal(err)
	}
	codec := dist.ED{}
	source := func() sparse.ChunkReader {
		return sparse.NewUniformStream(n, n, nnz, 77, sparse.DefaultChunkEntries)
	}

	b.Run("materializing", func(b *testing.B) {
		peak := benchHeapPeak(b, func() error {
			g, err := sparse.Materialize(source())
			if err != nil {
				return err
			}
			m, err := machine.New(p, machine.WithRecvTimeout(300*time.Second))
			if err != nil {
				return err
			}
			defer m.Close()
			_, err = dist.Run(m, dist.Plan{Codec: codec, Global: g, Partition: part,
				Options: dist.Options{Method: dist.CRS}})
			return err
		})
		b.ReportMetric(peak, "peak-MB")
	})
	b.Run("streaming", func(b *testing.B) {
		peak := benchHeapPeak(b, func() error {
			m, err := machine.New(p, machine.WithRecvTimeout(300*time.Second))
			if err != nil {
				return err
			}
			defer m.Close()
			_, err = dist.RunStream(m, dist.StreamPlan{Codec: codec, Source: source(),
				Partition: part, Options: dist.Options{Method: dist.CRS},
				Stream: dist.StreamOptions{MemBudget: 8 << 20}})
			return err
		})
		b.ReportMetric(peak, "peak-MB")
	})
}

// BenchmarkSimnetEvents prices the network model's recording overhead:
// the same distribution with the flat counters alone ("counter") and
// with the uniform-topology recorder attached plus a full replay
// ("simnet-uniform"). CI gates the ratio at 1.10x — recording is two
// appends per message and the replay is O(events log p), so attaching
// the model must stay within noise of the legacy path.
func BenchmarkSimnetEvents(b *testing.B) {
	g := sparse.Uniform(400, 400, 0.1, 7)
	run := func(b *testing.B, topology string) {
		b.Helper()
		var tl interface{ Hash() uint64 }
		for i := 0; i < b.N; i++ {
			d, err := core.Distribute(g, core.Config{
				Scheme: "ED", Partition: "row", Method: "CRS",
				Procs: 8, Topology: topology,
			})
			if err != nil {
				b.Fatal(err)
			}
			if t := d.NetTimeline(); t != nil {
				tl = t // force the replay inside the timed loop
			}
			d.Close()
		}
		if topology != "" && tl == nil {
			b.Fatal("no timeline despite topology")
		}
	}
	b.Run("counter", func(b *testing.B) { run(b, "") })
	b.Run("simnet-uniform", func(b *testing.B) { run(b, "uniform") })
}
